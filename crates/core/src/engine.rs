//! The recovery engine: transaction execution, steal handling, commit and
//! abort (paper §4).
//!
//! One [`Engine`] instance runs either the paper's **RDA** scheme (twin-page
//! parity UNDO) or the traditional **WAL** baseline (before-image logging on
//! every steal), selected by [`EngineKind`](crate::EngineKind). All physical
//! I/O — array transfers and log-page transfers — is billed to shared
//! counters so workloads can be compared against the paper's analytical
//! model transfer-for-transfer.
//!
//! ## The steal decision (paper Figure 3)
//!
//! When a page modified by an uncommitted transaction must be written to
//! the database (buffer eviction, FORCE at EOT, or an ACC checkpoint), the
//! engine classifies the write:
//!
//! * group **clean** → the steal *dirties* the group: the page's header
//!   joins the transaction's steal chain (written with the data page, no
//!   log I/O — the BOT record alone must already be durable), the obsolete
//!   twin becomes the working parity
//!   (`P_work := P_committed ⊕ old ⊕ new`), and no before-image is logged;
//! * group dirty **for the same page and transaction** → the working twin
//!   is updated in place, again with no before-image;
//! * otherwise → the before-image (or record-level before-diffs) is forced
//!   to the log, and the write updates **both** twins so the parity
//!   difference `P ⊕ P′` continues to encode exactly the un-logged page's
//!   old⊕new.

use crate::backend::{BackendSetup, IntentRecord, MetaSink};
use crate::chain::ChainDirectory;
use crate::config::{CheckpointPolicy, DbConfig, EngineKind, EotPolicy, LogGranularity};
use crate::error::{DbError, Result};
use crate::group::{DirtySet, StealClass};
use crate::locks::LockTable;
use crate::twin::{TwinDirectory, TwinMeta};
use rda_array::{BlockDevice, DataPageId, DefaultDisk, DiskArray, GroupId, Page, ParitySlot};
use rda_buffer::BufferPool;
use rda_obs::{
    monotonic_nanos, Counter, EventKind, FlightRecord, Histogram, MetricsRegistry, ObsHub,
    StealKind,
};
use rda_wal::{CheckpointKind, LogManager, LogRecord, LogStore, TxnId};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// A record-granularity update (offset, before bytes, after bytes).
#[derive(Debug, Clone)]
pub(crate) struct RecOp {
    pub offset: u32,
    pub before: Vec<u8>,
    pub after: Vec<u8>,
}

/// Volatile per-transaction state.
#[derive(Debug, Default)]
pub(crate) struct TxnState {
    /// BOT record appended to the log?
    pub bot_logged: bool,
    /// First-touch before-images (for in-buffer rollback).
    pub before: HashMap<DataPageId, Page>,
    /// Pages written by this transaction.
    pub written: BTreeSet<DataPageId>,
    /// Last version of each page this transaction has stolen to disk.
    pub last_stolen: HashMap<DataPageId, Page>,
    /// Pages stolen riding the parity (no UNDO logging).
    pub stolen_parity: BTreeSet<DataPageId>,
    /// Pages stolen under before-image / record-diff logging.
    pub stolen_logged: BTreeSet<DataPageId>,
    /// Record-granularity ops per page, in execution order.
    pub rec_ops: HashMap<DataPageId, Vec<RecOp>>,
    /// How many of `rec_ops[page]` have had their before-diffs logged.
    pub undo_logged_upto: HashMap<DataPageId, usize>,
    /// [`monotonic_nanos`] at `begin`, closing into the commit-latency
    /// histogram at commit-ack time.
    pub begin_nanos: u64,
}

impl TxnState {
    /// Cache `data` as the last disk image this transaction stole for
    /// `page`. Refreshing an existing entry copies into the page buffer
    /// already held (`Page::clone_from` reuses the allocation) instead of
    /// building a new page per steal.
    pub(crate) fn note_stolen(&mut self, page: DataPageId, data: &Page) {
        match self.last_stolen.entry(page) {
            std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().clone_from(data),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(data.clone());
            }
        }
    }
}

/// The complete page set of one in-flight read-modify-write, staged in the
/// modeled controller NVRAM (see [`Durable::intent`]) before any platter
/// write begins. Restart recovery replays it verbatim, which both finishes
/// the interrupted sequence and heals any block it left torn.
#[derive(Debug, Clone)]
pub(crate) struct WriteIntent {
    pub page: DataPageId,
    pub data: Page,
    pub parity: Vec<(GroupId, ParitySlot, Page)>,
}

impl WriteIntent {
    /// Backend-portable form for the [`MetaSink`] journal.
    fn to_record(&self) -> IntentRecord {
        IntentRecord {
            page: self.page.0,
            data: self.data.as_ref().to_vec(),
            parity: self
                .parity
                .iter()
                .map(|(g, slot, p)| (g.0, slot.index() as u8, p.as_ref().to_vec()))
                .collect(),
        }
    }

    /// Rebuild a staged intent from its journaled form at reopen time.
    fn from_record(rec: &IntentRecord) -> WriteIntent {
        WriteIntent {
            page: DataPageId(rec.page),
            data: Page::from_bytes(&rec.data),
            parity: rec
                .parity
                .iter()
                .map(|(g, slot, bytes)| {
                    let slot = if *slot == 0 {
                        ParitySlot::P0
                    } else {
                        ParitySlot::P1
                    };
                    (GroupId(*g), slot, Page::from_bytes(bytes))
                })
                .collect(),
        }
    }
}

/// The durable half of a database: everything that survives a crash.
pub(crate) struct Durable<D: BlockDevice = DefaultDisk> {
    pub array: Arc<DiskArray<D>>,
    pub log_store: Arc<LogStore>,
    pub twins: Arc<TwinDirectory>,
    /// The TWIST-style steal chain (page headers on disk).
    pub chain: Arc<ChainDirectory>,
    /// Modeled controller NVRAM closing the RAID small-write hole: a crash
    /// between a data-page write and its parity update(s) would otherwise
    /// leave the parity silently stale — undetectable afterwards, because
    /// log-driven redo skips pages whose contents already match. Real
    /// arrays close the hole with a battery-backed staging buffer; this
    /// slot models exactly that (one RMW's pages, no extra transfers).
    pub intent: Arc<parking_lot::Mutex<Option<WriteIntent>>>,
    /// Backend journal for the metadata above (twin headers, steal chain,
    /// staged intent). `None` on the simulated array, where process memory
    /// *is* the durable medium.
    pub meta: Option<Arc<dyn MetaSink>>,
}

/// Engine-owned counters and histograms, registered in the shared
/// [`MetricsRegistry`] at open time. The handles are cached here so the
/// hot paths never take the registry lock.
pub(crate) struct EngineMetrics {
    pub commits: Counter,
    pub aborts: Counter,
    pub steals_parity: Counter,
    pub steals_logged: Counter,
    pub undo_parity: Counter,
    pub undo_log: Counter,
    pub lock_conflicts: Counter,
    pub recoveries: Counter,
    pub pages_per_commit: Arc<Histogram>,
    /// begin → commit-ack wall time per committed transaction.
    pub commit_nanos: Arc<Histogram>,
    /// First-conflict → acquisition wall time per contended page lock.
    pub lock_wait_nanos: Arc<Histogram>,
    /// Time inside `log.force()` on the commit path.
    pub log_force_nanos: Arc<Histogram>,
    /// Time inside the commit durability barrier (queue drain + fsync on
    /// the file backend; effectively zero on the simulated array).
    pub barrier_nanos: Arc<Histogram>,
}

/// Bucket bounds for nanosecond-scale latency histograms: 1µs → 1s in
/// half-decade steps (wall clocks feed these, so they are excluded from
/// every deterministic export — see `MetricsRegistry::counters_json`).
const NANOS_BOUNDS: [u64; 13] = [
    1_000,
    5_000,
    10_000,
    50_000,
    100_000,
    500_000,
    1_000_000,
    5_000_000,
    10_000_000,
    50_000_000,
    100_000_000,
    500_000_000,
    1_000_000_000,
];

impl EngineMetrics {
    fn register(metrics: &MetricsRegistry) -> EngineMetrics {
        EngineMetrics {
            commits: metrics.counter("engine_commits_total"),
            aborts: metrics.counter("engine_aborts_total"),
            steals_parity: metrics.counter("engine_steals_parity_total"),
            steals_logged: metrics.counter("engine_steals_logged_total"),
            undo_parity: metrics.counter("engine_undo_parity_total"),
            undo_log: metrics.counter("engine_undo_log_total"),
            lock_conflicts: metrics.counter("engine_lock_conflicts_total"),
            recoveries: metrics.counter("engine_recoveries_total"),
            pages_per_commit: metrics
                .histogram("engine_pages_per_commit", &[1, 2, 4, 8, 16, 32, 64]),
            commit_nanos: metrics.histogram("engine_commit_nanos", &NANOS_BOUNDS),
            lock_wait_nanos: metrics.histogram("engine_lock_wait_nanos", &NANOS_BOUNDS),
            log_force_nanos: metrics.histogram("engine_log_force_nanos", &NANOS_BOUNDS),
            barrier_nanos: metrics.histogram("engine_barrier_nanos", &NANOS_BOUNDS),
        }
    }
}

/// The database engine (volatile state over [`Durable`] storage).
pub struct Engine<D: BlockDevice = DefaultDisk> {
    pub(crate) cfg: DbConfig,
    pub(crate) dur: Durable<D>,
    pub(crate) log: LogManager,
    pub(crate) buffer: BufferPool,
    pub(crate) dirty: DirtySet,
    pub(crate) locks: LockTable,
    pub(crate) active: HashMap<TxnId, TxnState>,
    pub(crate) next_txn: u64,
    pub(crate) clock: u64,
    pub(crate) ops_since_ckpt: u64,
    pub(crate) needs_recovery: bool,
    pub(crate) obs: ObsHub,
    pub(crate) metrics: EngineMetrics,
    /// Called after every commit/checkpoint durability barrier — the
    /// backend's flight recorder hangs its black-box flush here.
    pub(crate) barrier_hook: Option<Arc<dyn Fn() + Send + Sync>>,
    /// The pre-crash flight record the backend read back at reopen,
    /// handed to the first [`RecoveryReport`](crate::RecoveryReport).
    pub(crate) prior_flight: Option<FlightRecord>,
}

impl Engine {
    /// Create a fresh database over the default simulated disks.
    pub(crate) fn open(cfg: DbConfig) -> Engine {
        let disks = rda_array::sim_disks_for(&cfg.array);
        Engine::open_with(cfg, BackendSetup::fresh(disks))
    }
}

impl<D: BlockDevice> Engine<D> {
    /// Create (or reopen) a database over backend-supplied disks. When the
    /// setup carries [`RestoredState`](crate::backend::RestoredState) the
    /// engine comes up needing recovery, exactly as after a simulated
    /// crash.
    pub(crate) fn open_with(cfg: DbConfig, setup: BackendSetup<D>) -> Engine<D> {
        cfg.validate();
        let BackendSetup {
            disks,
            meta_sink,
            log_sink,
            restored,
        } = setup;
        let obs = ObsHub::new();
        if cfg.trace_events > 0 {
            obs.tracer.enable(cfg.trace_events);
        }
        obs.tracer.set_spans(cfg.span_events);
        let array = Arc::new(DiskArray::with_disks(
            cfg.array.clone(),
            Arc::clone(&obs.tracer),
            disks,
        ));
        let groups = array.groups();
        let needs_recovery = restored.is_some();
        let (twin_metas, chains, intent, log_base, log_records) = match restored {
            Some(r) => (r.twin_metas, r.chains, r.intent, r.log_base, r.log_records),
            None => (Vec::new(), Vec::new(), None, 0, Vec::new()),
        };
        let log_store = LogStore::restore(cfg.log.clone(), log_base, log_records, log_sink);
        let buffer = BufferPool::with_obs(cfg.buffer.clone(), Arc::clone(&obs.tracer));
        // The legacy `DbStats` counters become registry views: the atomics
        // keep living where they always did (array/log I/O stats, pool
        // counters); the registry only reads them at export time.
        {
            let io = array.stats();
            let r = Arc::clone(&io);
            obs.metrics
                .register_view("array_reads_total", move || r.reads());
            obs.metrics
                .register_view("array_writes_total", move || io.writes());
            let log_io = log_store.stats();
            let lr = Arc::clone(&log_io);
            obs.metrics
                .register_view("log_reads_total", move || lr.reads());
            obs.metrics
                .register_view("log_writes_total", move || log_io.writes());
            let pc = buffer.counters();
            let c = Arc::clone(&pc);
            obs.metrics
                .register_view("buffer_hits_total", move || c.load().hits);
            let c = Arc::clone(&pc);
            obs.metrics
                .register_view("buffer_misses_total", move || c.load().misses);
            let c = Arc::clone(&pc);
            obs.metrics
                .register_view("buffer_steals_total", move || c.load().steals);
            let c = Arc::clone(&pc);
            obs.metrics
                .register_view("buffer_writebacks_total", move || c.load().writebacks);
            let c = Arc::clone(&pc);
            obs.metrics
                .register_view("buffer_drops_total", move || c.load().drops);
            obs.metrics
                .register_view("buffer_eviction_scans_total", move || {
                    pc.load().eviction_scans
                });
        }
        let metrics = EngineMetrics::register(&obs.metrics);
        let twin_metas = if twin_metas.is_empty() {
            vec![TwinMeta::fresh(); groups as usize]
        } else {
            assert_eq!(
                twin_metas.len(),
                groups as usize,
                "restored twin headers must cover every group"
            );
            twin_metas
        };
        let dur = Durable {
            array,
            log_store: Arc::clone(&log_store),
            twins: Arc::new(TwinDirectory::restore(twin_metas, meta_sink.clone())),
            chain: Arc::new(ChainDirectory::restore(&chains, meta_sink.clone())),
            intent: Arc::new(parking_lot::Mutex::new(
                intent.as_ref().map(WriteIntent::from_record),
            )),
            meta: meta_sink,
        };
        let clock = dur.twins.max_ts() + 1;
        Engine {
            log: LogManager::new(log_store),
            buffer,
            dirty: DirtySet::new(),
            locks: LockTable::new(),
            active: HashMap::new(),
            next_txn: 1,
            clock,
            ops_since_ckpt: 0,
            needs_recovery,
            cfg,
            dur,
            obs,
            metrics,
            barrier_hook: None,
            prior_flight: None,
        }
    }

    /// Is this the RDA engine (twin parity UNDO)?
    pub(crate) fn is_rda(&self) -> bool {
        self.cfg.engine == EngineKind::Rda
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn check_ready(&self) -> Result<()> {
        if self.needs_recovery {
            return Err(DbError::NeedsRecovery);
        }
        Ok(())
    }

    fn check_page(&self, page: DataPageId) -> Result<()> {
        if page.0 >= self.dur.array.data_pages() {
            return Err(DbError::BadPage(page));
        }
        Ok(())
    }

    fn txn_state(&mut self, txn: TxnId) -> Result<&mut TxnState> {
        self.active.get_mut(&txn).ok_or(DbError::UnknownTxn(txn))
    }

    /// Note a denied lock request (the requester sees the conflict error;
    /// this model has no blocking waits) in the trace and metrics.
    fn note_lock_conflict(&self, page: DataPageId, txn: TxnId) {
        self.metrics.lock_conflicts.inc();
        self.obs
            .locks
            .note_conflict(page.0, txn.0, monotonic_nanos());
        self.obs.tracer.emit(|| EventKind::LockWait {
            page: page.0,
            txn: txn.0,
        });
    }

    /// Note a successful page-lock acquisition: if this `(txn, page)`
    /// pair conflicted earlier, the retry that finally won closes one
    /// lock-wait sample into the histogram.
    fn note_lock_acquired(&self, page: DataPageId, txn: TxnId) {
        if !self.obs.locks.has_pending() {
            return; // uncontended fast path: one relaxed load
        }
        if let Some(wait) = self
            .obs
            .locks
            .note_acquired(page.0, txn.0, monotonic_nanos())
        {
            self.metrics.lock_wait_nanos.observe(wait);
        }
    }

    // ---- parity slot selection -----------------------------------------

    /// The twin holding the last *committed* parity of a group.
    pub(crate) fn committed_slot(&self, g: GroupId) -> ParitySlot {
        if !self.is_rda() {
            return ParitySlot::P0;
        }
        match self.dirty.get(g) {
            Some(info) => info.working.other(),
            None => self.dur.twins.current_slot(g),
        }
    }

    /// The twin whose parity covers the *current on-disk contents* of a
    /// group (the working twin while the group is dirty). Degraded reads
    /// must reconstruct through this one.
    pub(crate) fn disk_read_slot(&self, g: GroupId) -> ParitySlot {
        if !self.is_rda() {
            return ParitySlot::P0;
        }
        match self.dirty.get(g) {
            Some(info) => info.working,
            None => self.dur.twins.current_slot(g),
        }
    }

    /// Are all disks hosting group `g` — every data member and both
    /// parity twins — alive? Parity riding consumes exactly the
    /// redundancy a dead member is already spending, so
    /// [`Engine::steal_single`] refuses to ride in a degraded group.
    fn group_fully_alive(&self, g: GroupId) -> bool {
        let geo = self.dur.array.geometry();
        let members_alive = geo
            .members(g)
            .iter()
            .all(|p| !self.dur.array.disk_failed(geo.data_loc(*p).disk));
        members_alive
            && ParitySlot::BOTH.iter().all(|slot| {
                geo.parity_loc(g, *slot)
                    .is_some_and(|loc| !self.dur.array.disk_failed(loc.disk))
            })
    }

    /// Which parity twins a data-page write must update: the committed one
    /// for a clean group, **both** for a dirty group (so `P ⊕ P′` keeps
    /// encoding the un-logged page's old⊕new — paper footnote on the
    /// `2·p_l` term).
    fn write_slots(&self, g: GroupId) -> Vec<ParitySlot> {
        if !self.is_rda() {
            return vec![ParitySlot::P0];
        }
        match self.dirty.get(g) {
            Some(info) => vec![info.working, info.working.other()],
            None => vec![self.dur.twins.current_slot(g)],
        }
    }

    // ---- physical I/O helpers ------------------------------------------

    /// Read the current on-disk contents of a page, falling back to XOR
    /// reconstruction through the correct twin when a disk has failed.
    pub(crate) fn read_disk(&self, page: DataPageId) -> Result<Page> {
        match self.dur.array.try_read_data(page) {
            Ok(p) => Ok(p),
            Err(
                rda_array::ArrayError::DiskFailed(_)
                | rda_array::ArrayError::MediaError { .. }
                | rda_array::ArrayError::TornPage { .. },
            ) => {
                let g = self.dur.array.geometry().group_of(page);
                Ok(self
                    .dur
                    .array
                    .reconstruct_data(page, self.disk_read_slot(g))?)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Write `new` over `page`, updating each parity page in `slots` with
    /// the `old ⊕ new` delta. Costs `|slots|` reads + `1 + |slots|` writes.
    ///
    /// Degraded mode: a single failed disk is tolerated — a write landing
    /// on the dead disk is skipped, because the parity (or, for a dead
    /// parity twin, the surviving data) still encodes the new contents and
    /// the rebuild recomputes the missing block. The write only fails when
    /// the new contents would be encoded nowhere.
    pub(crate) fn write_with_parity(
        &mut self,
        page: DataPageId,
        new: &Page,
        old: &Page,
        slots: &[ParitySlot],
    ) -> Result<()> {
        let g = self.dur.array.geometry().group_of(page);
        // A dead twin carries no information worth updating (the rebuild
        // will recompute its block), so only live parities are staged.
        let mut staged: Vec<(GroupId, ParitySlot, Page)> = Vec::with_capacity(slots.len());
        for slot in slots {
            match self.dur.array.read_parity(g, *slot) {
                Ok(mut parity) => {
                    parity.xor_many_in_place(&[old, new]);
                    staged.push((g, *slot, parity));
                }
                Err(rda_array::ArrayError::DiskFailed(_)) => {}
                Err(e) => return Err(e.into()),
            }
        }
        // Stage the full write set in the modeled controller NVRAM before
        // touching the platters: if power fails partway through the
        // sequence, restart recovery replays the intent and the
        // data/parity pair can never end up silently inconsistent. The
        // parity pages are *moved* into the staging slot — the platter
        // writes below read them back out of it, so nothing is copied.
        //
        // With a journaling backend there is one NVRAM slot but a queue of
        // in-flight platter writes, so reusing the slot must wait until the
        // previous sequence has fully reached the platters — otherwise the
        // journal could name intent N while intent N-1's writes are still
        // in flight and unreplayable. The barrier is free on the simulated
        // array and skipped entirely without a journal.
        let sink = self.dur.meta.clone();
        if sink.is_some() {
            self.dur.array.write_barrier()?;
        }
        let nvram = Arc::clone(&self.dur.intent);
        let mut intent_slot = nvram.lock();
        *intent_slot = Some(WriteIntent {
            page,
            data: new.clone(),
            parity: staged,
        });
        if let (Some(sink), Some(intent)) = (&sink, intent_slot.as_ref()) {
            // Durable before any platter write of this sequence enqueues.
            sink.intent_set(&intent.to_record());
        }
        let mut result = Ok(());
        if let Some(intent) = intent_slot.as_ref() {
            result = self.write_with_parity_platter(page, new, g, &intent.parity);
        }
        // The staging buffer is only needed while power can vanish
        // mid-sequence; on a crash error it must survive for replay.
        if !matches!(result, Err(DbError::Array(rda_array::ArrayError::Crashed))) {
            *intent_slot = None;
        }
        drop(intent_slot);
        result?;
        self.refresh_stolen_cache(page, new);
        Ok(())
    }

    /// The platter half of [`write_with_parity`]: perform the staged
    /// writes. Split out so the caller can clear (or keep) the NVRAM
    /// intent depending on how the sequence ended.
    fn write_with_parity_platter(
        &mut self,
        page: DataPageId,
        new: &Page,
        g: GroupId,
        parities: &[(GroupId, ParitySlot, Page)],
    ) -> Result<()> {
        let data_written = match self.dur.array.write_data_unprotected(page, new) {
            Ok(()) => true,
            Err(rda_array::ArrayError::DiskFailed(_)) => false,
            Err(e) => return Err(e.into()),
        };
        let mut parity_written = false;
        for (pg, slot, parity) in parities {
            match self.dur.array.write_parity(*pg, *slot, parity) {
                Ok(()) => parity_written = true,
                Err(rda_array::ArrayError::DiskFailed(_)) => {}
                Err(e) => return Err(e.into()),
            }
        }
        if !data_written && !parity_written {
            // Two losses in one group: the new contents are gone.
            return Err(rda_array::ArrayError::Unrecoverable(g).into());
        }
        Ok(())
    }

    /// Keep every active transaction's cached last-written disk image of
    /// `page` accurate after a disk write — a stale cache would corrupt
    /// the next parity delta computed from it.
    fn refresh_stolen_cache(&mut self, page: DataPageId, data: &Page) {
        for st in self.active.values_mut() {
            if let Some(img) = st.last_stolen.get_mut(&page) {
                img.clone_from(data);
            }
        }
    }

    /// Best available old-disk image for `page` before overwriting it.
    ///
    /// A version this transaction previously stole is authoritative; under
    /// FORCE with *page* locking the first-touch before-image equals the
    /// disk version (every committed predecessor was forced, and page locks
    /// exclude concurrent co-writers); otherwise the page is read (the
    /// model's `a = 4` case). Under record locking another transaction's
    /// uncommitted bytes can sit in the first-touch image, so it is never
    /// trusted as the disk version there.
    fn old_disk_image(&mut self, page: DataPageId, owner: Option<TxnId>) -> Result<Page> {
        if let Some(txn) = owner {
            if let Some(st) = self.active.get(&txn) {
                if let Some(img) = st.last_stolen.get(&page) {
                    return Ok(img.clone());
                }
                if self.cfg.eot == EotPolicy::Force && self.cfg.granularity == LogGranularity::Page
                {
                    if let Some(img) = st.before.get(&page) {
                        return Ok(img.clone());
                    }
                }
            }
        }
        self.read_disk(page)
    }

    // ---- logging helpers -------------------------------------------------

    fn ensure_bot(&mut self, txn: TxnId) -> Result<()> {
        let st = self.txn_state(txn)?;
        if !st.bot_logged {
            st.bot_logged = true;
            self.log.append(LogRecord::Bot { txn });
        }
        Ok(())
    }

    /// Append the UNDO information for `page` that is not yet in the log:
    /// the first-touch before-image (page logging) or the unlogged
    /// before-diffs (record logging). Does not force.
    fn log_undo_for(&mut self, txn: TxnId, page: DataPageId) -> Result<()> {
        self.ensure_bot(txn)?;
        match self.cfg.granularity {
            LogGranularity::Page => {
                let st = self.txn_state(txn)?;
                if st.stolen_logged.contains(&page) {
                    return Ok(()); // before-image already durable
                }
                let image = st
                    .before
                    .get(&page)
                    .expect("page written by txn has a before-image")
                    .as_ref()
                    .to_vec();
                self.log.append(LogRecord::BeforeImage { txn, page, image });
            }
            LogGranularity::Record => {
                let st = self.txn_state(txn)?;
                let ops = st.rec_ops.get(&page).cloned().unwrap_or_default();
                let from = *st.undo_logged_upto.get(&page).unwrap_or(&0);
                st.undo_logged_upto.insert(page, ops.len());
                for op in &ops[from..] {
                    self.log.append(LogRecord::RecordUpdate {
                        txn,
                        page,
                        offset: op.offset,
                        before: op.before.clone(),
                        after: op.after.clone(),
                    });
                }
            }
        }
        Ok(())
    }

    // ---- the steal path ---------------------------------------------------

    /// Write back a page carrying uncommitted updates (buffer eviction,
    /// FORCE flush, or checkpoint). Implements Figure 3.
    pub(crate) fn steal_uncommitted(
        &mut self,
        page: DataPageId,
        data: &Page,
        modifiers: &BTreeSet<TxnId>,
    ) -> Result<()> {
        debug_assert!(!modifiers.is_empty());
        let g = self.dur.array.geometry().group_of(page);

        let single = if modifiers.len() == 1 {
            Some(*modifiers.iter().next().expect("len 1"))
        } else {
            None
        };

        // The WAL baseline, and any page shared by multiple in-flight
        // writers (possible under record locking), always log UNDO.
        let must_log = !self.is_rda() || single.is_none();

        let steal_kind = if must_log {
            for txn in modifiers {
                self.log_undo_for(*txn, page)?;
            }
            self.log.force();
            let old = self.old_disk_image(page, single)?;
            let slots = self.write_slots(g);
            self.write_with_parity(page, data, &old, &slots)?;
            for txn in modifiers {
                if let Some(st) = self.active.get_mut(txn) {
                    st.stolen_logged.insert(page);
                    st.note_stolen(page, data);
                }
            }
            StealKind::Logged
        } else {
            self.steal_single(page, data, g, single.expect("single modifier"))?
        };
        match steal_kind {
            StealKind::Logged => self.metrics.steals_logged.inc(),
            StealKind::DirtiesGroup | StealKind::RidesExisting => self.metrics.steals_parity.inc(),
        }
        // txn 0 is the "several modifiers" sentinel (real ids start at 1).
        let txn_id = single.map_or(0, |t| t.0);
        self.obs.tracer.emit(|| EventKind::Steal {
            group: g.0,
            page: page.0,
            txn: txn_id,
            kind: steal_kind,
        });
        self.paranoid_audit("steal_uncommitted");
        Ok(())
    }

    /// The single-modifier RDA arm of [`Engine::steal_uncommitted`]:
    /// classify the steal per Figure 3 and execute it, returning which
    /// arm actually applied.
    fn steal_single(
        &mut self,
        page: DataPageId,
        data: &Page,
        g: GroupId,
        txn: TxnId,
    ) -> Result<StealKind> {
        let mut class = self.dirty.classify(g, page, txn);

        // Record locking: a page may only ride the parity if this
        // transaction can escalate to an exclusive page lock, because
        // parity undo restores the *whole* page.
        if class == StealClass::DirtiesGroup
            && self.cfg.granularity == LogGranularity::Record
            && self.locks.lock_page(page, txn).is_err()
        {
            class = StealClass::NeedsLogging;
        }

        // Degraded mode: riding the parity needs the *whole group* alive —
        // both twins (the committed one keeps the before-image, the
        // working one takes the update) and every data member: parity undo
        // derives the old image from the group equation, and a dead member
        // makes that equation circular with the member's own rebuild (one
        // XOR identity, two unknowns — the before-image simply is no
        // longer in the array). Fall back to before-image logging for any
        // steal into a degraded group, including a re-steal that would
        // otherwise ride its existing parity entry.
        if class != StealClass::NeedsLogging && self.is_rda() && !self.group_fully_alive(g) {
            class = StealClass::NeedsLogging;
        }

        match class {
            StealClass::DirtiesGroup => {
                // The BOT record must be durable before any page of the
                // transaction reaches the database (§4.3); the steal
                // itself is chained through the page header, written as
                // part of the data-page write — no log I/O.
                self.ensure_bot(txn)?;
                self.log.force();

                let committed = self.committed_slot(g);
                let work = committed.other();

                let old = self.old_disk_image(page, Some(txn))?;
                // P_work := P_committed ⊕ old ⊕ new; one parity read, one
                // data write, one parity write (a = 3 with old in hand).
                let mut parity = self.dur.array.read_parity(g, committed)?;
                parity.xor_many_in_place(&[&old, data]);
                // Note the steal *before* the first platter write (the
                // header rides inside the data page): if power fails
                // anywhere in the sequence, restart undo finds the note
                // and restores the page through the committed twin — a
                // no-op if the write never landed.
                self.dur.chain.note_steal(txn, page);
                match self.dur.array.write_data_unprotected(page, data) {
                    // A dead data disk is fine: the working twin encodes
                    // the new contents for degraded reads and the rebuild.
                    Ok(()) | Err(rda_array::ArrayError::DiskFailed(_)) => {}
                    Err(e) => return Err(e.into()),
                }
                self.dur.array.write_parity(g, work, &parity)?;
                // The twin header (timestamp + Working state) travels
                // inside the parity page, so the directory flips only
                // once the write has actually reached the platter.
                let now = self.tick();
                let flipped = self.dur.twins.begin_working(g, now);
                debug_assert_eq!(flipped, work);
                self.refresh_stolen_cache(page, data);

                self.dirty.mark(g, page, txn, work);
                let st = self.txn_state(txn)?;
                st.stolen_parity.insert(page);
                st.note_stolen(page, data);
                Ok(StealKind::DirtiesGroup)
            }
            StealClass::RidesExisting => {
                let work = self.dirty.get(g).expect("dirty group").working;
                let old = self.old_disk_image(page, Some(txn))?;
                self.write_with_parity(page, data, &old, &[work])?;
                let st = self.txn_state(txn)?;
                st.note_stolen(page, data);
                Ok(StealKind::RidesExisting)
            }
            StealClass::NeedsLogging => {
                self.log_undo_for(txn, page)?;
                self.log.force();
                let old = self.old_disk_image(page, Some(txn))?;
                let slots = self.write_slots(g);
                self.write_with_parity(page, data, &old, &slots)?;
                let st = self.txn_state(txn)?;
                st.stolen_logged.insert(page);
                st.note_stolen(page, data);
                Ok(StealKind::Logged)
            }
        }
    }

    /// Write back a page whose updates are all committed.
    pub(crate) fn write_back_committed(&mut self, page: DataPageId, data: &Page) -> Result<()> {
        let g = self.dur.array.geometry().group_of(page);
        let old = self.read_disk(page)?;
        let slots = self.write_slots(g);
        self.write_with_parity(page, data, &old, &slots)
    }

    /// Make room in the buffer pool, performing at most one eviction.
    fn ensure_room(&mut self) -> Result<()> {
        if self.buffer.has_room() {
            return Ok(());
        }
        let ev = self.buffer.pop_victim().ok_or(DbError::BufferWedged)?;
        if ev.dirty {
            let modifiers: BTreeSet<TxnId> = ev.modifiers.iter().map(|&t| TxnId(t)).collect();
            if modifiers.is_empty() {
                self.write_back_committed(ev.page, &ev.data)?;
            } else {
                self.steal_uncommitted(ev.page, &ev.data, &modifiers)?;
            }
        }
        Ok(())
    }

    /// Get a page into the buffer and return its contents.
    fn buffered_read(&mut self, page: DataPageId) -> Result<Page> {
        if let Some(data) = self.buffer.lookup(page) {
            return Ok(data);
        }
        self.ensure_room()?;
        let data = self.read_disk(page)?;
        self.buffer.insert(page, data.clone(), false, None);
        Ok(data)
    }

    // ---- transaction operations -------------------------------------------

    /// Start a transaction. The BOT record is written lazily — only when
    /// the transaction first needs UNDO protection on disk (§4.3).
    pub(crate) fn begin(&mut self) -> Result<TxnId> {
        self.check_ready()?;
        let txn = TxnId(self.next_txn);
        self.next_txn += 1;
        self.active.insert(
            txn,
            TxnState {
                begin_nanos: monotonic_nanos(),
                ..TxnState::default()
            },
        );
        self.obs
            .tracer
            .emit_span(|| EventKind::TxnBegin { txn: txn.0 });
        Ok(txn)
    }

    /// Transactional page read. Under `strict_read_locks` the read takes a
    /// page-level shared lock held to EOT (strict 2PL).
    pub(crate) fn txn_read(&mut self, txn: TxnId, page: DataPageId) -> Result<Vec<u8>> {
        self.check_ready()?;
        self.check_page(page)?;
        self.txn_state(txn)?;
        if self.cfg.strict_read_locks {
            if let Err(e) = self.locks.lock_shared(page, txn) {
                self.note_lock_conflict(page, txn);
                return Err(e);
            }
            self.note_lock_acquired(page, txn);
        }
        let data = self.buffered_read(page)?;
        Ok(data.as_ref().to_vec())
    }

    /// Transactional whole-page write (page-logging granularity).
    pub(crate) fn txn_write(&mut self, txn: TxnId, page: DataPageId, bytes: &[u8]) -> Result<()> {
        self.check_ready()?;
        self.check_page(page)?;
        if self.cfg.granularity != LogGranularity::Page {
            return Err(DbError::WrongGranularity(
                "whole-page write requires page logging; use update()",
            ));
        }
        let page_size = self.cfg.array.page_size;
        if bytes.len() > page_size {
            return Err(DbError::PageOverflow {
                offset: 0,
                len: bytes.len(),
                page_size,
            });
        }
        self.txn_state(txn)?;
        if let Err(e) = self.locks.lock_page(page, txn) {
            self.note_lock_conflict(page, txn);
            return Err(e);
        }
        self.note_lock_acquired(page, txn);
        // An update access reads the page first (the paper's model: every
        // access is a page request; updates modify the fetched page).
        let current = self.buffered_read(page)?;
        let mut new = Page::zeroed(page_size);
        new.as_mut()[..bytes.len()].copy_from_slice(bytes);
        let st = self.txn_state(txn)?;
        st.before.entry(page).or_insert(current);
        st.written.insert(page);
        let installed = self.buffer.update_resident(page, new, txn.0);
        debug_assert!(installed, "page just ensured resident");
        self.after_op()
    }

    /// Transactional byte-range update (record-logging granularity).
    pub(crate) fn txn_update(
        &mut self,
        txn: TxnId,
        page: DataPageId,
        offset: usize,
        bytes: &[u8],
    ) -> Result<()> {
        self.check_ready()?;
        self.check_page(page)?;
        if self.cfg.granularity != LogGranularity::Record {
            return Err(DbError::WrongGranularity(
                "byte-range update requires record logging; use write()",
            ));
        }
        let page_size = self.cfg.array.page_size;
        if offset + bytes.len() > page_size {
            return Err(DbError::PageOverflow {
                offset,
                len: bytes.len(),
                page_size,
            });
        }
        self.txn_state(txn)?;
        if let Err(e) = self
            .locks
            .lock_range(page, offset as u32, bytes.len() as u32, txn)
        {
            self.note_lock_conflict(page, txn);
            return Err(e);
        }
        self.note_lock_acquired(page, txn);
        let current = self.buffered_read(page)?;
        let mut new = current.clone();
        new.as_mut()[offset..offset + bytes.len()].copy_from_slice(bytes);
        let st = self.txn_state(txn)?;
        st.before.entry(page).or_insert_with(|| current.clone());
        st.written.insert(page);
        st.rec_ops.entry(page).or_default().push(RecOp {
            offset: offset as u32,
            before: current.as_ref()[offset..offset + bytes.len()].to_vec(),
            after: bytes.to_vec(),
        });
        let installed = self.buffer.update_resident(page, new, txn.0);
        debug_assert!(installed, "page just ensured resident");
        self.after_op()
    }

    fn after_op(&mut self) -> Result<()> {
        self.ops_since_ckpt += 1;
        if let CheckpointPolicy::AccEvery { ops } = self.cfg.checkpoint {
            if self.ops_since_ckpt >= ops {
                self.checkpoint()?;
            }
        }
        Ok(())
    }

    /// Commit a transaction (§4: FORCE flush if configured, REDO logging,
    /// durable EOT, then the free twin flip — `commit_working` touches no
    /// parity page).
    ///
    /// Internally this is `prepare → barrier → finalize`; the pieces are
    /// separate so the group-commit gate can interleave several prepared
    /// transactions ahead of one shared durability barrier.
    pub(crate) fn txn_commit(&mut self, txn: TxnId) -> Result<()> {
        let written = self.txn_commit_prepare(txn)?;
        self.commit_force_barrier(&[txn])?;
        self.txn_commit_finalize(txn, &written)
    }

    /// Commit phase 1: FORCE write-backs, REDO log records, and the
    /// commit record itself (plus the TOC checkpoint record under FORCE).
    /// On return the commit record is *appended but not forced*, all locks
    /// are still held, and no twin has flipped — the transaction is
    /// durable iff a later log force reaches stable storage, which is
    /// exactly the state a group-commit batch accumulates.
    pub(crate) fn txn_commit_prepare(&mut self, txn: TxnId) -> Result<Vec<DataPageId>> {
        self.check_ready()?;
        if !self.active.contains_key(&txn) {
            return Err(DbError::UnknownTxn(txn));
        }
        let written: Vec<DataPageId> = self.txn_state(txn)?.written.iter().copied().collect();

        if self.cfg.eot == EotPolicy::Force {
            for page in &written {
                if self.buffer.is_dirty(*page) {
                    let data = self
                        .buffer
                        .peek(*page)
                        .expect("dirty page resident")
                        .clone();
                    // The frame may carry other transactions' uncommitted
                    // byte ranges (record locking), or — if this page was
                    // stolen earlier and re-dirtied by someone else — none
                    // of ours at all; UNDO protection must follow the
                    // frame's *current* modifiers.
                    let mods: BTreeSet<TxnId> = self
                        .buffer
                        .modifiers_of(*page)
                        .iter()
                        .map(|&t| TxnId(t))
                        .collect();
                    if mods.is_empty() {
                        self.write_back_committed(*page, &data)?;
                    } else {
                        self.steal_uncommitted(*page, &data, &mods)?;
                    }
                    self.buffer.mark_clean(*page);
                }
            }
        }

        // REDO information (media recovery for the FORCE case, crash redo
        // for ¬FORCE).
        match self.cfg.granularity {
            LogGranularity::Page => {
                for page in &written {
                    let image = match self.buffer.peek(*page) {
                        Some(p) => p.as_ref().to_vec(),
                        None => self
                            .active
                            .get(&txn)
                            .and_then(|st| st.last_stolen.get(page))
                            .expect("evicted page was stolen")
                            .as_ref()
                            .to_vec(),
                    };
                    self.log.append(LogRecord::AfterImage {
                        txn,
                        page: *page,
                        image,
                    });
                }
            }
            LogGranularity::Record => {
                let ops: Vec<(DataPageId, RecOp)> = {
                    let st = self.active.get(&txn).expect("active checked");
                    let mut v = Vec::new();
                    for (page, ops) in st.rec_ops.iter().collect::<BTreeMap<_, _>>() {
                        for op in ops {
                            v.push((*page, op.clone()));
                        }
                    }
                    v
                };
                for (page, op) in ops {
                    self.log.append(LogRecord::RecordRedo {
                        txn,
                        page,
                        offset: op.offset,
                        after: op.after,
                    });
                }
            }
        }

        self.log.append(LogRecord::Commit { txn });
        if self.cfg.eot == EotPolicy::Force {
            self.log.append(LogRecord::Checkpoint {
                kind: CheckpointKind::Toc,
                active: vec![],
            });
        }
        Ok(written)
    }

    /// Commit phase 2: the durability point shared by every transaction in
    /// `txns`. One barrier + one log force acks the whole batch — the
    /// group-commit amortization: every platter write the batch depends on
    /// (FORCE write-backs, earlier steals) must be on stable storage
    /// before the commit records are. A no-op barrier on the simulated
    /// array; on a real backend it drains the per-disk write queues.
    pub(crate) fn commit_force_barrier(&mut self, txns: &[TxnId]) -> Result<()> {
        self.check_ready()?;
        for txn in txns {
            self.obs
                .tracer
                .emit_span(|| EventKind::CommitBarrier { txn: txn.0 });
        }
        let barrier_start = monotonic_nanos();
        self.dur.array.write_barrier()?;
        let force_start = monotonic_nanos();
        self.metrics
            .barrier_nanos
            .observe(force_start - barrier_start);
        for txn in txns {
            self.obs
                .tracer
                .emit_span(|| EventKind::LogForce { txn: txn.0 });
        }
        self.log.force();
        self.metrics
            .log_force_nanos
            .observe(monotonic_nanos() - force_start);
        // The batch's durability point: let the black box flush its
        // snapshot while the queues are known-drained.
        if let Some(hook) = &self.barrier_hook {
            hook();
        }
        Ok(())
    }

    /// Commit phase 3: the post-durability bookkeeping for one member of a
    /// forced batch — twin flips, lock/buffer release, metrics, ack.
    pub(crate) fn txn_commit_finalize(&mut self, txn: TxnId, written: &[DataPageId]) -> Result<()> {
        self.check_ready()?;
        // The twin flip: the working parity of every group this
        // transaction dirtied becomes the committed parity. Zero I/O.
        for (g, info) in self.dirty.take_txn(txn) {
            if self.cfg.mutations.skip_commit_twin_flip {
                // Mutation-sensitivity knob: leave the committed twin
                // pointing at the pre-transaction parity. rda-check must
                // observe the resulting durability violation.
                continue;
            }
            self.dur.twins.commit_working(g, info.working);
            self.obs.tracer.emit(|| EventKind::CommitTwinFlip {
                group: g.0,
                txn: txn.0,
            });
        }

        self.dur.chain.clear_txn(txn);
        self.locks.release_txn(txn);
        self.buffer.release_txn(txn.0);
        let begin_nanos = self
            .active
            .remove(&txn)
            .map(|st| st.begin_nanos)
            .unwrap_or_default();
        self.obs.locks.forget_txn(txn.0);
        self.metrics.commits.inc();
        self.metrics.pages_per_commit.observe(written.len() as u64);
        self.metrics
            .commit_nanos
            .observe(monotonic_nanos().saturating_sub(begin_nanos));
        self.obs.tracer.emit_span(|| EventKind::CommitAck {
            txn: txn.0,
            pages: written.len() as u32,
        });
        self.paranoid_audit("txn_commit");
        Ok(())
    }

    /// Abort a transaction, rolling back in-buffer changes for free and
    /// undoing propagated pages via parity (`D_old = (P ⊕ P′) ⊕ D_new`) or
    /// via the log.
    pub(crate) fn txn_abort(&mut self, txn: TxnId) -> Result<()> {
        self.check_ready()?;
        let Some(_) = self.active.get(&txn) else {
            return Err(DbError::UnknownTxn(txn));
        };

        let (parity_pages, logged_pages, written): (
            Vec<DataPageId>,
            Vec<DataPageId>,
            Vec<DataPageId>,
        ) = {
            let st = self.active.get(&txn).expect("checked");
            (
                st.stolen_parity.iter().copied().collect(),
                st.stolen_logged.iter().copied().collect(),
                st.written.iter().copied().collect(),
            )
        };

        // Undo pages riding the parity.
        for page in &parity_pages {
            self.undo_via_parity(txn, *page)?;
        }

        // Undo logged pages by reading the before-images back from the log
        // (billed — the paper's c_b includes reading the log up to BOT).
        if !logged_pages.is_empty() {
            let undo = self.read_undo_from_log(txn)?;
            for page in &logged_pages {
                self.undo_via_log(txn, *page, &undo)?;
            }
        }

        // Roll back purely in-buffer changes.
        for page in &written {
            if parity_pages.contains(page) || logged_pages.contains(page) {
                continue;
            }
            self.rollback_buffer(txn, *page, None);
        }

        if self.active.get(&txn).expect("checked").bot_logged {
            self.log.append(LogRecord::Abort { txn });
            self.log.force();
        }

        debug_assert!(
            self.dirty.groups_of(txn).is_empty(),
            "parity undo cleaned groups"
        );
        self.dur.chain.clear_txn(txn);
        self.locks.release_txn(txn);
        self.buffer.release_txn(txn.0);
        self.active.remove(&txn);
        self.obs.locks.forget_txn(txn.0);
        self.metrics.aborts.inc();
        self.paranoid_audit("txn_abort");
        Ok(())
    }

    /// Undo one parity-riding page during a normal abort.
    fn undo_via_parity(&mut self, txn: TxnId, page: DataPageId) -> Result<()> {
        let g = self.dur.array.geometry().group_of(page);
        let info = self
            .dirty
            .get(g)
            .expect("parity-stolen page has dirty group");
        debug_assert_eq!(info.page, page);
        debug_assert_eq!(info.txn, txn);
        let work = info.working;
        let committed = work.other();

        let p_work_res = self.dur.array.read_parity(g, work);
        let p_comm_res = self.dur.array.read_parity(g, committed);
        // Borrow the cached last-stolen image when present; the owned
        // fallback only exists when the disk had to be read.
        let d_new_read;
        let d_new: &Page = match self
            .active
            .get(&txn)
            .and_then(|st| st.last_stolen.get(&page))
        {
            Some(p) => p,
            None => {
                d_new_read = self.read_disk(page)?;
                &d_new_read
            }
        };
        // The parity identity yields the pre-steal *disk* version. In
        // degraded mode there are fallbacks: with the working twin dead,
        // the committed twin plus the sibling pages reconstruct D_old
        // directly; with the committed twin dead, D_old is unobtainable
        // from the array, but a *normal* abort still holds the first-touch
        // image in memory (a crash in that exact window is the scheme's
        // documented blind spot — the committed twin is the only durable
        // copy of the before-image).
        let (p_comm, d_old): (Option<Page>, Option<Page>) = match (p_work_res, p_comm_res) {
            (Ok(p_work), Ok(p_comm)) => {
                // Reuse the working-twin page as the accumulator:
                // D_old = P_work ⊕ P_committed ⊕ D_new, no fresh pages.
                let mut d_old = p_work;
                d_old.xor_many_in_place(&[&p_comm, d_new]);
                (Some(p_comm), Some(d_old))
            }
            (Err(rda_array::ArrayError::DiskFailed(_)), Ok(p_comm)) => {
                let d_old = self.dur.array.reconstruct_data(page, committed)?;
                (Some(p_comm), Some(d_old))
            }
            (Ok(_), Err(rda_array::ArrayError::DiskFailed(_))) => (None, None),
            (Err(e), _) | (_, Err(e)) => return Err(e.into()),
        };
        // … but the correct restore target differs:
        // * page logging — the first-touch before-image (under ¬FORCE the
        //   committed-visible state may be newer than d_old: a committed
        //   predecessor whose page never left the buffer); page locks
        //   guarantee it contains no foreign bytes;
        // * record logging — the current disk contents with *this
        //   transaction's own* diffs reverse-applied, because the
        //   first-touch image may embed another (since-ended) transaction's
        //   byte ranges as they stood back then.
        // Both reduce to d_old under FORCE with exclusive access.
        let restore = match self.cfg.granularity {
            LogGranularity::Page => {
                match self
                    .active
                    .get(&txn)
                    .and_then(|st| st.before.get(&page))
                    .cloned()
                {
                    Some(before) => before,
                    None => d_old
                        .clone()
                        .ok_or(DbError::Array(rda_array::ArrayError::Unrecoverable(g)))?,
                }
            }
            LogGranularity::Record => {
                let mut img = d_new.clone();
                if let Some(ops) = self.active.get(&txn).and_then(|st| st.rec_ops.get(&page)) {
                    for op in ops.iter().rev() {
                        let off = op.offset as usize;
                        img.as_mut()[off..off + op.before.len()].copy_from_slice(&op.before);
                    }
                }
                img
            }
        };
        // Pin the restored image in the log so a crash mid-undo can replay
        // this step instead of re-deriving it from (now mutated) parity.
        self.log.append(LogRecord::Compensation {
            txn,
            page,
            image: restore.as_ref().to_vec(),
        });
        self.log.force();

        match self.dur.array.write_data_unprotected(page, &restore) {
            Ok(()) | Err(rda_array::ArrayError::DiskFailed(_)) => {}
            Err(e) => return Err(e.into()),
        }
        self.refresh_stolen_cache(page, &restore);

        // Committed parity covering the restored group state: derived from
        // the delta when the committed twin was readable, recomputed from
        // the members otherwise (the data page was just rewritten).
        let parity_new = match (&p_comm, &d_old) {
            (Some(p_comm), Some(d_old)) => {
                let mut parity_new = p_comm.clone();
                parity_new.xor_many_in_place(&[d_old, &restore]);
                parity_new
            }
            _ => self.dur.array.compute_group_parity(g)?,
        };
        // Invalidate the working twin (header reset + content rewrite) and
        // refresh the committed twin when the restore target differed from
        // the pre-steal disk version. With the committed twin's disk dead,
        // the refreshed *working* twin is promoted to committed instead.
        let work_written = matches!(self.dur.array.write_parity(g, work, &parity_new), Ok(()));
        match &p_comm {
            Some(p_comm) => {
                if parity_new != *p_comm {
                    match self.dur.array.write_parity(g, committed, &parity_new) {
                        Ok(()) | Err(rda_array::ArrayError::DiskFailed(_)) => {}
                        Err(e) => return Err(e.into()),
                    }
                }
                self.dur.twins.invalidate(g, work);
            }
            None => {
                if !work_written {
                    return Err(rda_array::ArrayError::Unrecoverable(g).into());
                }
                let now = self.tick();
                self.dur.twins.set_committed(g, work, now);
            }
        }

        self.rollback_buffer(txn, page, Some(&restore));

        // The group is clean again.
        self.dirty.remove(g);
        self.metrics.undo_parity.inc();
        self.obs.tracer.emit(|| EventKind::ParityUndo {
            group: g.0,
            page: page.0,
            txn: txn.0,
        });
        Ok(())
    }

    /// Read this transaction's UNDO information back from the log (billed),
    /// returning per-page before-images (page mode) or before-diff lists in
    /// log order (record mode).
    // Result-returning for symmetry with the other undo sources even
    // though log readback itself cannot fail in the simulated store.
    #[allow(clippy::unnecessary_wraps)]
    fn read_undo_from_log(&mut self, txn: TxnId) -> Result<UndoInfo> {
        // Ensure everything relevant is durable before reading it back.
        self.log.force();
        let store = Arc::clone(&self.dur.log_store);
        let from = store.find_bot(txn).unwrap_or(rda_wal::Lsn(0));
        let records = store.read_range(from, rda_wal::Lsn(store.len()));
        let mut undo = UndoInfo::default();
        for (_, record) in records {
            match record {
                LogRecord::BeforeImage {
                    txn: t,
                    page,
                    image,
                } if t == txn => {
                    undo.images.entry(page).or_insert(image);
                }
                LogRecord::RecordUpdate {
                    txn: t,
                    page,
                    offset,
                    before,
                    ..
                } if t == txn => {
                    undo.diffs.entry(page).or_default().push((offset, before));
                }
                _ => {}
            }
        }
        Ok(undo)
    }

    /// Undo one logged page during a normal abort.
    fn undo_via_log(&mut self, txn: TxnId, page: DataPageId, undo: &UndoInfo) -> Result<()> {
        let g = self.dur.array.geometry().group_of(page);
        let restored = match self.cfg.granularity {
            LogGranularity::Page => {
                let image = undo
                    .images
                    .get(&page)
                    .expect("logged steal has before-image");
                Page::from_bytes(image)
            }
            LogGranularity::Record => {
                let mut current = self.read_disk(page)?;
                let diffs = undo
                    .diffs
                    .get(&page)
                    .expect("logged steal has before-diffs");
                for (offset, before) in diffs.iter().rev() {
                    let off = *offset as usize;
                    current.as_mut()[off..off + before.len()].copy_from_slice(before);
                }
                current
            }
        };
        let old = self.old_disk_image(page, Some(txn))?;
        let slots = self.write_slots(g);
        self.write_with_parity(page, &restored, &old, &slots)?;
        self.rollback_buffer(txn, page, Some(&restored));
        self.metrics.undo_log.inc();
        self.obs.tracer.emit(|| EventKind::LogUndo {
            page: page.0,
            txn: txn.0,
        });
        Ok(())
    }

    /// Roll back the *buffer* copy of a page for an aborting transaction:
    /// the first-touch image under page locking, or the current contents
    /// with this transaction's own diffs reverse-applied under record
    /// locking (other transactions' co-resident bytes must survive). The
    /// frame stays dirty unless the result provably equals the on-disk
    /// version (`disk_now`).
    fn rollback_buffer(&mut self, txn: TxnId, page: DataPageId, disk_now: Option<&Page>) {
        let Some(current) = self.buffer.peek(page).cloned() else {
            return;
        };
        let Some(st) = self.active.get(&txn) else {
            return;
        };
        let img = match self.cfg.granularity {
            LogGranularity::Page => match st.before.get(&page) {
                Some(before) => before.clone(),
                None => return,
            },
            LogGranularity::Record => {
                let mut img = current;
                if let Some(ops) = st.rec_ops.get(&page) {
                    for op in ops.iter().rev() {
                        let off = op.offset as usize;
                        img.as_mut()[off..off + op.before.len()].copy_from_slice(&op.before);
                    }
                }
                img
            }
        };
        let dirty = match disk_now {
            Some(d) => img != *d,
            None => true,
        };
        self.buffer.overwrite_resident(page, img, dirty);
    }

    // ---- checkpointing ------------------------------------------------------

    /// Take an action-consistent checkpoint: propagate every dirty buffer
    /// page (steal rules apply to uncommitted ones), then log the ACC
    /// record naming the active transactions (§5.2.2).
    pub(crate) fn checkpoint(&mut self) -> Result<()> {
        self.check_ready()?;
        for (page, _) in self.buffer.dirty_pages() {
            let data = self.buffer.peek(page).expect("dirty page resident").clone();
            let modifiers: BTreeSet<TxnId> = self
                .buffer
                .modifiers_of(page)
                .iter()
                .map(|&t| TxnId(t))
                .collect();
            if modifiers.is_empty() {
                self.write_back_committed(page, &data)?;
            } else {
                self.steal_uncommitted(page, &data, &modifiers)?;
            }
            self.buffer.mark_clean(page);
        }
        let active: Vec<TxnId> = {
            let mut v: Vec<TxnId> = self.active.keys().copied().collect();
            v.sort();
            v
        };
        // Redo after a restart starts at this checkpoint, which asserts
        // that every page propagated above is on disk — make it true on a
        // real backend before the record becomes durable.
        self.dur.array.write_barrier()?;
        self.log.append(LogRecord::Checkpoint {
            kind: CheckpointKind::Acc,
            active,
        });
        self.log.force();
        // A checkpoint is a durability barrier too: give the black box
        // its flush opportunity.
        if let Some(hook) = &self.barrier_hook {
            hook();
        }
        self.ops_since_ckpt = 0;
        Ok(())
    }
}

/// UNDO information read back from the log for a rollback.
#[derive(Debug, Default)]
pub(crate) struct UndoInfo {
    /// First before-image per page (page logging).
    pub images: BTreeMap<DataPageId, Vec<u8>>,
    /// Before-diffs in log order per page (record logging).
    pub diffs: BTreeMap<DataPageId, Vec<(u32, Vec<u8>)>>,
}
