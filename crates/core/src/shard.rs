//! The sharded engine: parity groups striped over N independent engines.
//!
//! The paper's recovery unit — a parity group with its twin pair and
//! Dirty_Set entry — belongs to exactly one group, so the engine
//! partitions naturally along group boundaries (cf. *Fast Failure
//! Recovery for Main-Memory DBMSs on Multicores*: both normal processing
//! and recovery parallelize over partitions). [`ShardedDb`] runs one full
//! [`Database`] per shard — its own lock table, Dirty_Set, steal-chain
//! directory, buffer partition, WAL, and parity sub-array — so
//! transactions touching a single shard never contend with other shards'
//! locks, and restart recovery (bitmap scan + undo/redo per group) runs
//! shard-parallel.
//!
//! ## Shard mapping
//!
//! Global parity group `g` lives on shard `g % N` as local group
//! `g / N`; global data page `p` (group `p / n`, member `p % n`) becomes
//! local page `(p / n / N) * n + p % n`. Striping (rather than
//! contiguous ranges) keeps any contiguous key range spread over all
//! shards, which is what makes the disjoint/overlapping perf modes
//! meaningful.
//!
//! ## Cross-shard transactions: 2PC with a durable decision intent
//!
//! A [`ShardedTxn`] lazily opens one sub-transaction per shard it
//! touches. Commit of a multi-shard transaction is two-phase:
//!
//! 1. **Prepared** is implicit: every sub-transaction holds its page
//!    locks and its writes are buffered but undoable (STEAL-protected by
//!    parity twins or the log) — a crash before the decision makes every
//!    sub-transaction an ordinary loser, so abort needs no coordination
//!    (presumed abort).
//! 2. **Decide**: the coordinator stages a [`CrossShardIntent`] — the
//!    transaction's full operation list — in its intent journal. The
//!    journal is modeled NVRAM, exactly like the engine's write-intent
//!    slot (`Durable.intent`): it survives [`ShardedDb::crash`].
//! 3. **Apply**: sub-transactions commit one shard at a time in
//!    ascending shard order (never two engine locks at once; the order
//!    makes the analyze lock-order pass's life easy and deadlock
//!    impossible). Each durable sub-commit is recorded in the intent's
//!    per-shard *done marks* (same modeled NVRAM), then the intent is
//!    cleared once every shard has applied.
//!
//! A crash anywhere after (2) is repaired by [`ShardedDb::recover`]: the
//! per-shard restart recoveries first roll back every undecided
//! sub-transaction, then the coordinator *replays* each staged intent as
//! fresh per-shard transactions and clears it. Replay skips shards whose
//! done mark is set: a durably applied sub-commit released its page
//! locks, so later transactions may have legitimately committed over the
//! same pages — rewriting the intent's recorded images there would lose
//! those acknowledged commits. On the shards replay does touch, nothing
//! newer can have intervened (see the fence below), so rewriting the
//! recorded images is idempotent. The transaction therefore becomes
//! visible atomically: either no shard shows it (undecided) or, after
//! recovery, every shard does (decided).
//!
//! ## In-doubt commits
//!
//! A sub-commit failure after (2) leaves the transaction **in doubt**:
//! decided — it *will* commit — but not applied everywhere.
//! [`ShardedTxn::commit`] then returns [`DbError::CommitInDoubt`]
//! (carrying the global id) rather than an ordinary error, because a
//! caller that mistook the failure for presumed abort and retried would
//! have both the retry and the intent replay applied. Callers observe
//! resolution with [`ShardedDb::in_doubt`] and can finish the
//! application on a live system with [`ShardedDb::resolve_in_doubt`]
//! (crash-free equivalent of the recovery replay).
//!
//! Until an intent is resolved, the pages it has yet to reach are
//! *fenced*: the decided transaction logically still owns them even
//! though its sub-transactions' locks may have been torn down by the
//! failure, so a commit that wrote any such page fails fast with a lock
//! conflict naming the in-doubt transaction as holder. The fence check
//! and intent staging serialize on the journal lock, and any writer of a
//! fenced page necessarily acquired the page lock after the failed
//! sub-commit released it (page locks are held write→commit), which is
//! after staging — so no committed write can slip between the decision
//! and its replay.
//!
//! Scope: `ShardedDb` runs over simulated disks (the `DefaultDisk`
//! backend). Sharding the file-backed storage layout is future work;
//! group commit (the other half of this feature) works on both backends
//! through [`Database`] itself. Note the latency interaction: a
//! cross-shard commit runs its sub-commits sequentially, each through
//! its shard's own commit gate, so the worst-case ack latency of a gated
//! cross-shard commit is the *sum* of the per-shard linger windows
//! (bounded by `touched_shards × window_micros`); the gate's
//! uncontended-leader fast path skips the linger when a shard has no
//! other committer in flight, which is the common cross-shard case.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rda_array::DataPageId;
use rda_obs::{merge_shard_snapshots, ShardTaggedEvent};
use rda_wal::TxnId;

use crate::db::{Database, DbStats, Transaction};
use crate::error::{DbError, Result};
use crate::recovery::RecoveryReport;
use crate::{AuditReport, DbConfig};

/// The page/group ↔ shard arithmetic. Copyable, pure, and test-covered:
/// every global page maps to exactly one (shard, local page) and back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    /// Number of shards (≥ 1).
    pub shards: u32,
    /// Data pages per parity group (`ArrayConfig::n`).
    pub n: u32,
    /// Total parity groups across all shards.
    pub groups: u32,
}

impl ShardMap {
    /// Which shard owns global parity group `g`.
    #[must_use]
    pub fn shard_of_group(&self, g: u32) -> u32 {
        g % self.shards
    }

    /// Which shard owns global page `p`.
    #[must_use]
    pub fn shard_of_page(&self, p: u32) -> u32 {
        self.shard_of_group(p / self.n)
    }

    /// Global page → (shard, shard-local page).
    #[must_use]
    pub fn to_local(&self, p: u32) -> (u32, u32) {
        let (g, m) = (p / self.n, p % self.n);
        (g % self.shards, (g / self.shards) * self.n + m)
    }

    /// (shard, shard-local page) → global page.
    #[must_use]
    pub fn to_global(&self, shard: u32, local: u32) -> u32 {
        let (lg, m) = (local / self.n, local % self.n);
        (lg * self.shards + shard) * self.n + m
    }

    /// How many parity groups shard `s` owns (striping leaves the first
    /// `groups % shards` shards one group larger).
    #[must_use]
    pub fn groups_in_shard(&self, s: u32) -> u32 {
        (self.groups - s).div_ceil(self.shards)
    }

    /// Total data pages across all shards.
    #[must_use]
    pub fn data_pages(&self) -> u32 {
        self.n * self.groups
    }
}

/// One operation of a cross-shard transaction, recorded (with global
/// page ids) for intent replay.
#[derive(Debug, Clone)]
enum IntentOp {
    /// Full-page write (page granularity).
    Write { page: u32, data: Vec<u8> },
    /// Byte-range update (record granularity).
    Update {
        page: u32,
        offset: usize,
        data: Vec<u8>,
    },
}

impl IntentOp {
    /// The global page this operation touches.
    fn page(&self) -> u32 {
        match self {
            IntentOp::Write { page, .. } | IntentOp::Update { page, .. } => *page,
        }
    }
}

/// A decided-but-not-fully-applied cross-shard commit: the 2PC decision
/// record, staged in the coordinator's modeled-NVRAM journal before any
/// shard applies and cleared after all have.
#[derive(Debug, Clone)]
struct CrossShardIntent {
    /// Global transaction id.
    txn: u64,
    /// The transaction's operations in execution order.
    ops: Vec<IntentOp>,
    /// Shards whose sub-commit of this transaction is already durable.
    /// Intent replay must never rewrite these: their page locks were
    /// released at sub-commit, so later transactions may have committed
    /// over the same pages, and the recorded images are stale for them.
    done: Vec<u32>,
}

/// The 2PC coordinator: global transaction ids, the durable intent
/// journal, and cross-shard traffic counters.
struct Coordinator {
    /// Global transaction-id source.
    // ordering: Relaxed — id allocation only needs uniqueness, which
    // fetch_add's atomicity alone provides; ids are never used to order
    // cross-thread memory accesses.
    next_txn: AtomicU64,
    /// Decided intents awaiting full application (modeled NVRAM: an Arc
    /// shared across [`ShardedDb::crash`], like `Durable.intent`).
    intents: Mutex<Vec<CrossShardIntent>>,
    /// Cross-shard transactions committed / aborted.
    // ordering: Relaxed — monotone statistics counters, read only by
    // `ShardedDb::stats` after the measured activity.
    cross_commits: AtomicU64,
    cross_aborts: AtomicU64,
}

impl Coordinator {
    /// Durably record (modeled NVRAM, like the journal itself) that shard
    /// `s` finished applying `gid`'s sub-commit, so intent replay skips
    /// that shard.
    fn mark_shard_done(&self, gid: u64, s: u32) {
        let mut intents = self.intents.lock();
        if let Some(intent) = intents.iter_mut().find(|i| i.txn == gid) {
            if !intent.done.contains(&s) {
                intent.done.push(s);
            }
        }
    }
}

/// What [`ShardedDb::recover`] reports: each shard's restart-recovery
/// report plus the global ids of decided cross-shard transactions whose
/// intents were replayed (their effects are now visible on all shards).
#[derive(Debug)]
pub struct ShardedRecovery {
    /// Per-shard restart-recovery reports, in shard order.
    pub reports: Vec<RecoveryReport>,
    /// Decided cross-shard transactions applied by intent replay.
    pub replayed: Vec<u64>,
}

/// Per-shard and aggregate physical-I/O statistics.
#[derive(Debug, Clone)]
pub struct ShardedStats {
    /// One [`DbStats`] per shard, in shard order.
    pub per_shard: Vec<DbStats>,
    /// Cross-shard transactions committed through 2PC.
    pub cross_shard_commits: u64,
    /// Cross-shard transactions aborted.
    pub cross_shard_aborts: u64,
}

impl ShardedStats {
    /// Sum of every shard's counters.
    #[must_use]
    pub fn merged(&self) -> DbStats {
        let mut total = DbStats::default();
        for s in &self.per_shard {
            total.accumulate(s);
        }
        total
    }
}

struct ShardedInner {
    shards: Vec<Database>,
    map: ShardMap,
    coord: Coordinator,
}

impl ShardedInner {
    /// Does a staged intent still own one of `ops`' pages — i.e. the
    /// page's shard has not applied that intent yet? Returns the fenced
    /// page and the owning transaction's global id. See the module docs:
    /// committing over such a page would later be overwritten by intent
    /// replay, losing the commit.
    fn intent_conflict(&self, ops: &[IntentOp]) -> Option<(u32, u64)> {
        if ops.is_empty() {
            return None;
        }
        let intents = self.coord.intents.lock();
        for intent in intents.iter() {
            for op in &intent.ops {
                let page = op.page();
                if intent.done.contains(&self.map.shard_of_page(page)) {
                    continue;
                }
                if ops.iter().any(|mine| mine.page() == page) {
                    return Some((page, intent.txn));
                }
            }
        }
        None
    }
}

/// A database of N independent engine shards keyed by parity group. See
/// the module docs for the mapping and the cross-shard commit protocol.
#[derive(Clone)]
pub struct ShardedDb {
    inner: Arc<ShardedInner>,
}

impl ShardedDb {
    /// Open `cfg.shards` engine shards over simulated disks, striping
    /// `cfg.array.groups` parity groups round-robin. Each shard gets the
    /// configured buffer size as its own partition (no shard ever waits
    /// on another's eviction clock).
    ///
    /// # Panics
    /// Panics if the configuration is incoherent (see
    /// [`DbConfig::validate`], which also checks `1 ≤ shards ≤ groups`).
    #[must_use]
    #[allow(clippy::needless_pass_by_value)] // by-value for symmetry with Database::open
    pub fn open(cfg: DbConfig) -> ShardedDb {
        cfg.validate();
        let map = ShardMap {
            shards: cfg.shards,
            n: cfg.array.n,
            groups: cfg.array.groups,
        };
        let shards = (0..cfg.shards)
            .map(|s| {
                let mut sub = cfg.clone();
                sub.shards = 1;
                sub.array.groups = map.groups_in_shard(s);
                Database::open(sub)
            })
            .collect();
        ShardedDb {
            inner: Arc::new(ShardedInner {
                shards,
                map,
                coord: Coordinator {
                    next_txn: AtomicU64::new(0),
                    intents: Mutex::new(Vec::new()),
                    cross_commits: AtomicU64::new(0),
                    cross_aborts: AtomicU64::new(0),
                },
            }),
        }
    }

    /// The page/group ↔ shard arithmetic in use.
    #[must_use]
    pub fn map(&self) -> ShardMap {
        self.inner.map
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> u32 {
        self.inner.map.shards
    }

    /// Total data pages across all shards.
    #[must_use]
    pub fn data_pages(&self) -> u32 {
        self.inner.map.data_pages()
    }

    /// Direct access to one shard (tests, metrics export).
    ///
    /// # Panics
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn shard(&self, s: u32) -> &Database {
        &self.inner.shards[s as usize]
    }

    /// Begin a (potentially cross-shard) transaction.
    #[must_use]
    pub fn begin(&self) -> ShardedTxn {
        // ordering: Relaxed — global txn ids only need uniqueness.
        let gid = 1 + self.inner.coord.next_txn.fetch_add(1, Ordering::Relaxed);
        ShardedTxn {
            inner: Arc::clone(&self.inner),
            gid,
            subs: (0..self.inner.map.shards).map(|_| None).collect(),
            ops: Vec::new(),
            finished: false,
        }
    }

    /// Read a page outside any transaction.
    ///
    /// # Errors
    /// As [`Database::read_page`].
    pub fn read_page(&self, page: u32) -> Result<Vec<u8>> {
        let (s, local) = self.local(page)?;
        self.inner.shards[s as usize].read_page(local)
    }

    /// Atomic dump of all data pages in global page order (each shard's
    /// dump is transaction-atomic; cross-shard atomicity holds whenever
    /// no cross-shard transaction is mid-commit, i.e. at the quiescent
    /// points the checker samples).
    ///
    /// # Errors
    /// As [`Database::state_dump`].
    pub fn state_dump(&self) -> Result<Vec<Vec<u8>>> {
        let dumps: Vec<Vec<Vec<u8>>> = self
            .inner
            .shards
            .iter()
            .map(Database::state_dump)
            .collect::<Result<_>>()?;
        let mut out = Vec::with_capacity(self.data_pages() as usize);
        for p in 0..self.data_pages() {
            let (s, local) = self.inner.map.to_local(p);
            out.push(dumps[s as usize][local as usize].clone());
        }
        Ok(out)
    }

    /// Simulate a whole-machine crash: every shard loses volatile state.
    /// Decided cross-shard intents survive (modeled NVRAM).
    pub fn crash(&self) {
        for db in &self.inner.shards {
            db.crash();
        }
    }

    /// Shard-parallel restart recovery, then cross-shard intent replay.
    ///
    /// Each shard's analysis → undo → redo → bitmap rebuild touches only
    /// that shard's groups, so the passes run on one thread per shard;
    /// the coordinator then replays decided-but-unapplied cross-shard
    /// intents (idempotently) and clears them.
    ///
    /// # Errors
    /// The first shard recovery or intent-replay error, in shard order.
    /// Staged intents survive an errored replay and are retried by the
    /// next `recover`.
    pub fn recover(&self) -> Result<ShardedRecovery> {
        let results: Vec<Result<RecoveryReport>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .inner
                .shards
                .iter()
                .map(|db| scope.spawn(|| db.recover()))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(report) => report,
                    // Re-raise a shard thread's panic on the caller.
                    Err(panic) => std::panic::resume_unwind(panic),
                })
                .collect()
        });
        let reports = results.into_iter().collect::<Result<Vec<_>>>()?;
        let replayed = self.replay_intents()?;
        Ok(ShardedRecovery { reports, replayed })
    }

    /// Crash every shard, then recover.
    ///
    /// # Errors
    /// As [`ShardedDb::recover`].
    pub fn crash_and_recover(&self) -> Result<ShardedRecovery> {
        self.crash();
        self.recover()
    }

    /// Deterministic restart recovery: the same passes as
    /// [`ShardedDb::recover`], but one shard at a time in shard order.
    /// The differential checker uses this variant so a planted fault's
    /// "crash at global I/O k" lands at a reproducible point; production
    /// callers should prefer the shard-parallel [`ShardedDb::recover`].
    ///
    /// # Errors
    /// As [`ShardedDb::recover`].
    pub fn recover_sequential(&self) -> Result<ShardedRecovery> {
        let reports = self
            .inner
            .shards
            .iter()
            .map(Database::recover)
            .collect::<Result<Vec<_>>>()?;
        let replayed = self.replay_intents()?;
        Ok(ShardedRecovery { reports, replayed })
    }

    /// Apply and clear every staged cross-shard intent (see module docs).
    /// Shards already recorded done are skipped: their sub-commit was
    /// durable before the failure, and later transactions may have
    /// committed over the same pages since — rewriting the recorded
    /// images there would silently lose those acknowledged commits.
    fn replay_intents(&self) -> Result<Vec<u64>> {
        let staged: Vec<CrossShardIntent> = self.inner.coord.intents.lock().clone();
        let mut replayed = Vec::new();
        for intent in staged {
            for (s, ops) in self.ops_by_shard(&intent.ops) {
                if intent.done.contains(&s) {
                    continue;
                }
                let db = &self.inner.shards[s as usize];
                let mut tx = db.begin();
                for op in ops {
                    match op {
                        IntentOp::Write { page, data } => {
                            let (_, local) = self.inner.map.to_local(*page);
                            tx.write(local, data)?;
                        }
                        IntentOp::Update { page, offset, data } => {
                            let (_, local) = self.inner.map.to_local(*page);
                            tx.update(local, *offset, data)?;
                        }
                    }
                }
                tx.commit()?;
                // Replay is re-entrant: once this shard's replay is
                // durable, a crash before the intent clears must not
                // rewrite the shard a second time.
                self.inner.coord.mark_shard_done(intent.txn, s);
            }
            self.inner
                .coord
                .intents
                .lock()
                .retain(|i| i.txn != intent.txn);
            replayed.push(intent.txn);
        }
        Ok(replayed)
    }

    /// Group an intent's ops by owning shard, ascending shard order,
    /// preserving execution order within a shard.
    fn ops_by_shard<'a>(&self, ops: &'a [IntentOp]) -> Vec<(u32, Vec<&'a IntentOp>)> {
        let mut by_shard: Vec<(u32, Vec<&IntentOp>)> = Vec::new();
        for s in 0..self.inner.map.shards {
            let mine: Vec<&IntentOp> = ops
                .iter()
                .filter(|op| self.inner.map.shard_of_page(op.page()) == s)
                .collect();
            if !mine.is_empty() {
                by_shard.push((s, mine));
            }
        }
        by_shard
    }

    /// Total disks across all shards (shard `s` owns the contiguous
    /// block `[s * per_shard, (s + 1) * per_shard)`).
    #[must_use]
    pub fn disks(&self) -> u16 {
        self.inner.shards[0].disks() * self.inner.map.shards as u16
    }

    /// Disks per shard.
    #[must_use]
    pub fn disks_per_shard(&self) -> u16 {
        self.inner.shards[0].disks()
    }

    /// Fail one disk (global numbering; see [`ShardedDb::disks`]).
    pub fn fail_disk(&self, disk: u16) {
        let per = self.disks_per_shard();
        self.inner.shards[usize::from(disk / per)].fail_disk(disk % per);
    }

    /// Is `disk` (global numbering) currently failed?
    #[must_use]
    pub fn disk_failed(&self, disk: u16) -> bool {
        let per = self.disks_per_shard();
        self.inner.shards[usize::from(disk / per)].disk_failed(disk % per)
    }

    /// Rebuild one failed disk through the committed twins.
    ///
    /// # Errors
    /// As [`Database::media_recover`].
    pub fn media_recover(&self, disk: u16) -> Result<u64> {
        let per = self.disks_per_shard();
        self.inner.shards[usize::from(disk / per)].media_recover(disk % per)
    }

    /// Install one fault hook on every shard. Sharing a single
    /// [`rda_array::FaultHook`] `Arc` gives the hook a *global* billed
    /// I/O counter, so "crash at global I/O k" means the same thing it
    /// does unsharded.
    #[allow(clippy::needless_pass_by_value)] // mirrors Database::install_fault_hook
    pub fn install_fault_hook(&self, hook: Arc<dyn rda_array::FaultHook>) {
        for db in &self.inner.shards {
            db.install_fault_hook(Arc::clone(&hook));
        }
    }

    /// Stop consulting the installed fault hook on every shard.
    pub fn clear_fault_hook(&self) {
        for db in &self.inner.shards {
            db.clear_fault_hook();
        }
    }

    /// XOR-verify parity and twin invariants on every shard. Returns all
    /// violations, each prefixed with its shard.
    ///
    /// # Errors
    /// As [`Database::verify`].
    pub fn verify(&self) -> Result<Vec<String>> {
        let mut out = Vec::new();
        for (s, db) in self.inner.shards.iter().enumerate() {
            for v in db.verify()? {
                out.push(format!("shard {s}: {v}"));
            }
        }
        Ok(out)
    }

    /// Run the read-only invariant audit on every shard, merged into one
    /// report (violations shard-prefixed).
    #[must_use]
    pub fn audit(&self) -> AuditReport {
        let mut merged = AuditReport {
            groups_checked: 0,
            groups_skipped: 0,
            violations: Vec::new(),
        };
        for (s, db) in self.inner.shards.iter().enumerate() {
            let r = db.audit();
            merged.groups_checked += r.groups_checked;
            merged.groups_skipped += r.groups_skipped;
            merged
                .violations
                .extend(r.violations.into_iter().map(|v| format!("shard {s}: {v}")));
        }
        merged
    }

    /// Per-shard and aggregate I/O statistics.
    #[must_use]
    pub fn stats(&self) -> ShardedStats {
        ShardedStats {
            per_shard: self.inner.shards.iter().map(Database::stats).collect(),
            // ordering: Relaxed — statistics counter, see Coordinator.
            cross_shard_commits: self.inner.coord.cross_commits.load(Ordering::Relaxed),
            // ordering: Relaxed — statistics counter, see Coordinator.
            cross_shard_aborts: self.inner.coord.cross_aborts.load(Ordering::Relaxed),
        }
    }

    /// Transactions currently active across all shards (a cross-shard
    /// transaction counts once per shard it touches).
    #[must_use]
    pub fn active_transactions(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(Database::active_transactions)
            .sum()
    }

    /// Decided cross-shard intents not yet fully applied.
    #[must_use]
    pub fn staged_intents(&self) -> usize {
        self.inner.coord.intents.lock().len()
    }

    /// Is `gid`'s cross-shard commit decided but not yet applied on every
    /// shard it touched? True between a commit that returned
    /// [`DbError::CommitInDoubt`] and the next successful
    /// [`ShardedDb::recover`] / [`ShardedDb::resolve_in_doubt`]. Once
    /// false again, the transaction is durably committed everywhere — an
    /// in-doubt gid never resolves to an abort, because staging the
    /// intent *is* the commit decision.
    #[must_use]
    pub fn in_doubt(&self, gid: u64) -> bool {
        self.inner.coord.intents.lock().iter().any(|i| i.txn == gid)
    }

    /// Finish applying every staged cross-shard intent on a live system —
    /// the crash-free resolution for [`DbError::CommitInDoubt`]. Only
    /// shards whose sub-commit has not completed are touched; returns the
    /// global ids resolved.
    ///
    /// # Errors
    /// The first replay error (a lock conflict with a live transaction,
    /// a shard still awaiting restart recovery, …). Unresolved intents
    /// stay staged for the next attempt or for [`ShardedDb::recover`].
    pub fn resolve_in_doubt(&self) -> Result<Vec<u64>> {
        self.replay_intents()
    }

    /// Every shard's trace, merged into one shard-tagged event stream
    /// (see [`rda_obs::merge_shard_snapshots`]).
    #[must_use]
    pub fn trace_events(&self) -> Vec<ShardTaggedEvent> {
        let snaps: Vec<_> = self
            .inner
            .shards
            .iter()
            .map(Database::trace_snapshot)
            .collect();
        merge_shard_snapshots(&snaps)
    }
}

impl ShardedDb {
    fn local(&self, page: u32) -> Result<(u32, u32)> {
        if page >= self.data_pages() {
            return Err(DbError::BadPage(DataPageId(page)));
        }
        Ok(self.inner.map.to_local(page))
    }
}

/// A transaction over a [`ShardedDb`]: sub-transactions open lazily on
/// the shards it touches. Dropped without commit, every sub-transaction
/// aborts (best-effort), same as [`Transaction`].
pub struct ShardedTxn {
    inner: Arc<ShardedInner>,
    gid: u64,
    subs: Vec<Option<Transaction>>,
    /// Execution-order operation journal (global pages) — becomes the
    /// cross-shard intent payload at commit.
    ops: Vec<IntentOp>,
    finished: bool,
}

impl ShardedTxn {
    /// This transaction's global id (shard-local sub-transaction ids are
    /// an engine detail).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.gid
    }

    /// Which shards this transaction has touched so far.
    #[must_use]
    pub fn shards_touched(&self) -> Vec<u32> {
        (0..self.inner.map.shards)
            .filter(|s| self.subs[*s as usize].is_some())
            .collect()
    }

    fn sub(&mut self, s: u32) -> &mut Transaction {
        let shard = &self.inner.shards[s as usize];
        self.subs[s as usize].get_or_insert_with(|| shard.begin())
    }

    fn route(&self, page: u32) -> Result<(u32, u32)> {
        if page >= self.inner.map.data_pages() {
            return Err(DbError::BadPage(DataPageId(page)));
        }
        Ok(self.inner.map.to_local(page))
    }

    /// Translate a shard-local error back into global page terms.
    fn globalize(&self, s: u32, e: DbError) -> DbError {
        match e {
            DbError::LockConflict { page, holder } => DbError::LockConflict {
                page: DataPageId(self.inner.map.to_global(s, page.0)),
                holder,
            },
            DbError::BadPage(p) => DbError::BadPage(DataPageId(self.inner.map.to_global(s, p.0))),
            other => other,
        }
    }

    /// Read a page (global id).
    ///
    /// # Errors
    /// As [`Transaction::read`], with global page ids in lock conflicts.
    pub fn read(&mut self, page: u32) -> Result<Vec<u8>> {
        let (s, local) = self.route(page)?;
        self.sub(s).read(local).map_err(|e| self.globalize(s, e))
    }

    /// Overwrite a page (global id, page granularity).
    ///
    /// # Errors
    /// As [`Transaction::write`], with global page ids in lock conflicts.
    pub fn write(&mut self, page: u32, data: &[u8]) -> Result<()> {
        let (s, local) = self.route(page)?;
        self.sub(s)
            .write(local, data)
            .map_err(|e| self.globalize(s, e))?;
        self.ops.push(IntentOp::Write {
            page,
            data: data.to_vec(),
        });
        Ok(())
    }

    /// Update a byte range (global page id, record granularity).
    ///
    /// # Errors
    /// As [`Transaction::update`], with global page ids in lock
    /// conflicts.
    pub fn update(&mut self, page: u32, offset: usize, data: &[u8]) -> Result<()> {
        let (s, local) = self.route(page)?;
        self.sub(s)
            .update(local, offset, data)
            .map_err(|e| self.globalize(s, e))?;
        self.ops.push(IntentOp::Update {
            page,
            offset,
            data: data.to_vec(),
        });
        Ok(())
    }

    /// Commit. Single-shard transactions take that shard's ordinary
    /// (group-commit-aware) commit path; multi-shard transactions run
    /// the 2PC protocol from the module docs.
    ///
    /// # Errors
    /// As [`Transaction::commit`], plus [`DbError::LockConflict`] when
    /// one of this transaction's pages is fenced by an in-doubt intent
    /// (the conflict names the in-doubt transaction as holder). A
    /// multi-shard commit that errors after its decision was staged
    /// returns [`DbError::CommitInDoubt`]: the transaction **will**
    /// commit — [`ShardedDb::recover`] or
    /// [`ShardedDb::resolve_in_doubt`] finishes applying it atomically —
    /// so the caller must not retry it.
    pub fn commit(mut self) -> Result<u64> {
        self.finished = true;
        // A decided-but-unapplied intent still logically owns the pages
        // it has yet to reach (module docs, "In-doubt commits"): fail
        // fast like any lock conflict rather than commit data that
        // intent replay would silently overwrite.
        if let Some((page, holder)) = self.inner.intent_conflict(&self.ops) {
            return Err(DbError::LockConflict {
                page: DataPageId(page),
                holder: TxnId(holder),
            });
        }
        let touched: Vec<u32> = (0..self.inner.map.shards)
            .filter(|s| self.subs[*s as usize].is_some())
            .collect();
        match touched.len() {
            0 => Ok(self.gid),
            1 => {
                let s = touched[0];
                if let Some(tx) = self.subs[s as usize].take() {
                    tx.commit().map_err(|e| self.globalize(s, e))?;
                }
                Ok(self.gid)
            }
            _ => {
                // Decide: stage the intent (durable across crash) …
                self.inner.coord.intents.lock().push(CrossShardIntent {
                    txn: self.gid,
                    ops: self.ops.clone(),
                    done: Vec::new(),
                });
                // … then apply shard by shard, ascending, one engine at
                // a time (never two engine locks held at once). Each
                // durable sub-commit is recorded as done so intent
                // replay never rewrites it, and a failed sub-commit does
                // not stop the later shards: every shard that can apply
                // now does, narrowing replay to the shards that failed.
                let mut first_err: Option<DbError> = None;
                for s in touched {
                    if let Some(tx) = self.subs[s as usize].take() {
                        match tx.commit() {
                            Ok(_) => self.inner.coord.mark_shard_done(self.gid, s),
                            Err(e) => {
                                let e = self.globalize(s, e);
                                first_err.get_or_insert(e);
                            }
                        }
                    }
                }
                if let Some(cause) = first_err {
                    // Decided but not applied everywhere: in doubt, not
                    // aborted. The staged intent carries the outcome.
                    return Err(DbError::CommitInDoubt {
                        gid: self.gid,
                        cause: Box::new(cause),
                    });
                }
                self.inner
                    .coord
                    .intents
                    .lock()
                    .retain(|i| i.txn != self.gid);
                let commits = &self.inner.coord.cross_commits;
                // ordering: Relaxed — statistics counter.
                commits.fetch_add(1, Ordering::Relaxed);
                Ok(self.gid)
            }
        }
    }

    /// Abort every sub-transaction. Consumes the handle.
    ///
    /// # Errors
    /// The first sub-abort error, in shard order.
    pub fn abort(mut self) -> Result<()> {
        self.finished = true;
        let mut cross = 0;
        let mut result = Ok(());
        for s in 0..self.inner.map.shards {
            if let Some(tx) = self.subs[s as usize].take() {
                cross += 1;
                if let Err(e) = tx.abort() {
                    if result.is_ok() {
                        result = Err(self.globalize(s, e));
                    }
                }
            }
        }
        if cross > 1 {
            let aborts = &self.inner.coord.cross_aborts;
            // ordering: Relaxed — statistics counter.
            aborts.fetch_add(1, Ordering::Relaxed);
        }
        result
    }
}

impl Drop for ShardedTxn {
    fn drop(&mut self) {
        if !self.finished {
            // Sub-transactions abort through their own Drop impls.
            if self.subs.iter().filter(|s| s.is_some()).count() > 1 {
                let aborts = &self.inner.coord.cross_aborts;
                // ordering: Relaxed — statistics counter.
                aborts.fetch_add(1, Ordering::Relaxed);
            }
            self.subs.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineKind;
    use rda_array::{FaultAction, FaultHook, IoEvent};
    use std::sync::atomic::AtomicBool;

    fn cfg(shards: u32) -> DbConfig {
        DbConfig::small_test(EngineKind::Rda).shards(shards)
    }

    #[test]
    fn shard_map_is_a_bijection() {
        for shards in 1..=4 {
            let map = ShardMap {
                shards,
                n: 4,
                groups: 7,
            };
            let mut seen = std::collections::HashSet::new();
            for p in 0..map.data_pages() {
                let (s, local) = map.to_local(p);
                assert!(s < shards);
                assert!(local < map.groups_in_shard(s) * map.n);
                assert_eq!(map.to_global(s, local), p);
                assert!(seen.insert((s, local)), "collision at page {p}");
            }
            let total: u32 = (0..shards).map(|s| map.groups_in_shard(s)).sum();
            assert_eq!(total, map.groups);
        }
    }

    #[test]
    fn single_shard_txns_commit_and_read_back() {
        let db = ShardedDb::open(cfg(4));
        // One txn per shard: page p sits alone in group p/4.
        for p in [0u32, 4, 8, 12] {
            let mut tx = db.begin();
            tx.write(p, format!("page {p}").as_bytes()).unwrap();
            tx.commit().unwrap();
        }
        let s = db.stats();
        assert_eq!(s.cross_shard_commits, 0);
        for p in [0u32, 4, 8, 12] {
            let got = db.read_page(p).unwrap();
            let want = format!("page {p}");
            assert_eq!(&got[..want.len()], want.as_bytes());
        }
        assert!(db.verify().unwrap().is_empty());
        assert!(db.audit().is_clean());
    }

    #[test]
    fn cross_shard_commit_is_atomic_and_counted() {
        let db = ShardedDb::open(cfg(2));
        let mut tx = db.begin();
        tx.write(0, b"alpha").unwrap(); // group 0 → shard 0
        tx.write(4, b"beta").unwrap(); // group 1 → shard 1
        assert_eq!(tx.shards_touched(), vec![0, 1]);
        tx.commit().unwrap();
        assert_eq!(db.stats().cross_shard_commits, 1);
        assert_eq!(db.staged_intents(), 0, "intent cleared after full apply");
        assert_eq!(&db.read_page(0).unwrap()[..5], b"alpha");
        assert_eq!(&db.read_page(4).unwrap()[..4], b"beta");
    }

    #[test]
    fn cross_shard_abort_rolls_back_all_shards() {
        let db = ShardedDb::open(cfg(2));
        let mut tx = db.begin();
        tx.write(0, b"doomed").unwrap();
        tx.write(4, b"doomed").unwrap();
        tx.abort().unwrap();
        assert_eq!(db.stats().cross_shard_aborts, 1);
        assert!(db.read_page(0).unwrap().iter().all(|b| *b == 0));
        assert!(db.read_page(4).unwrap().iter().all(|b| *b == 0));
        assert!(db.audit().is_clean());
    }

    #[test]
    fn crash_before_decision_presumes_abort() {
        let db = ShardedDb::open(cfg(2));
        {
            let mut tx = db.begin();
            tx.write(0, b"undecided").unwrap();
            tx.write(4, b"undecided").unwrap();
            // Crash with the txn in flight: no intent was staged, so both
            // sub-transactions are ordinary losers.
            db.crash();
            drop(tx); // abort-on-drop tolerates the crash
        }
        let rec = db.recover().unwrap();
        assert!(rec.replayed.is_empty());
        assert_eq!(rec.reports.len(), 2);
        assert!(db.read_page(0).unwrap().iter().all(|b| *b == 0));
        assert!(db.read_page(4).unwrap().iter().all(|b| *b == 0));
        assert!(db.audit().is_clean());
    }

    /// Latched crash after the k-th global I/O — the in-test stand-in for
    /// the rda-faults injector (which lives downstream of this crate).
    struct CrashAt {
        k: u64,
        // ordering: AcqRel/Acquire — the latch and the I/O count are
        // consulted from whichever shard thread performs the k-th I/O and
        // must present a single global order; fetch_add's RMW atomicity
        // plus Acquire loads give the deciding thread a consistent view.
        seen: AtomicU64,
        latched: AtomicBool,
        /// One-shot: once the planted crash has fired and the machine was
        /// power-cycled, let all further I/O proceed.
        fired: AtomicBool,
    }

    impl FaultHook for CrashAt {
        fn on_io(&self, _ev: &IoEvent) -> FaultAction {
            // ordering: Acquire — see struct comment.
            if self.latched.load(Ordering::Acquire) {
                return FaultAction::Crash;
            }
            // ordering: Acquire — see struct comment.
            if self.fired.load(Ordering::Acquire) {
                return FaultAction::Proceed;
            }
            // ordering: AcqRel — see struct comment.
            if self.seen.fetch_add(1, Ordering::AcqRel) + 1 >= self.k {
                // ordering: Release — pairs with the Acquire loads above.
                self.latched.store(true, Ordering::Release);
                self.fired.store(true, Ordering::Release);
                return FaultAction::Crash;
            }
            FaultAction::Proceed
        }

        fn power_cycled(&self) {
            // ordering: Release — recovery-time reset, pairs with Acquire.
            self.latched.store(false, Ordering::Release);
        }
    }

    #[test]
    fn decided_intent_replays_after_crash_mid_apply() {
        let db = ShardedDb::open(cfg(2));
        // Warm up so the crash lands inside the cross-shard commit: count
        // the I/Os a no-fault run of the same txn performs, then plant the
        // crash a little before the end of the second sub-commit.
        let warm = ShardedDb::open(cfg(2));
        let mut tx = warm.begin();
        tx.write(0, b"warm").unwrap();
        tx.write(4, b"warm").unwrap();
        let hook = Arc::new(CrashAt {
            k: u64::MAX,
            seen: AtomicU64::new(0),
            latched: AtomicBool::new(false),
            fired: AtomicBool::new(false),
        });
        warm.install_fault_hook(hook.clone());
        tx.commit().unwrap();
        // ordering: Acquire — read after quiesce.
        let total = hook.seen.load(Ordering::Acquire);
        assert!(total > 2, "cross-shard commit performs physical I/O");

        // Now the real run: crash one I/O before the commit completes.
        let hook = Arc::new(CrashAt {
            k: total,
            seen: AtomicU64::new(0),
            latched: AtomicBool::new(false),
            fired: AtomicBool::new(false),
        });
        db.install_fault_hook(hook);
        let mut tx = db.begin();
        let gid = tx.id();
        tx.write(0, b"decided").unwrap();
        tx.write(4, b"decided").unwrap();
        let err = tx.commit().expect_err("planted crash fires");
        assert!(
            matches!(err, DbError::CommitInDoubt { gid: g, .. } if g == gid),
            "decided commit is in doubt, not aborted: {err:?}"
        );
        assert_eq!(db.staged_intents(), 1, "decision survived the crash");
        assert!(db.in_doubt(gid));

        db.crash();
        let rec = db.recover().unwrap();
        assert_eq!(rec.replayed, vec![gid], "intent replayed");
        assert_eq!(db.staged_intents(), 0);
        assert!(!db.in_doubt(gid), "resolved: committed everywhere");
        // The transaction is visible atomically on both shards.
        assert_eq!(&db.read_page(0).unwrap()[..7], b"decided");
        assert_eq!(&db.read_page(4).unwrap()[..7], b"decided");
        assert!(db.verify().unwrap().is_empty());
        assert!(db.audit().is_clean());
    }

    #[test]
    fn replay_never_rewrites_a_shard_that_committed_before_the_failure() {
        // T1 spans both shards; shard 0's sub-commit lands durably, then
        // shard 1 dies mid-sub-commit (hook on shard 1 only — the rest of
        // the machine stays live). T2 then commits a newer value to T1's
        // shard-0 page. Crash + recover must replay T1's intent onto
        // shard 1 only: shard 0 keeps T2's later acknowledged commit.
        let warm = ShardedDb::open(cfg(2));
        let hook = Arc::new(CrashAt {
            k: u64::MAX,
            seen: AtomicU64::new(0),
            latched: AtomicBool::new(false),
            fired: AtomicBool::new(false),
        });
        warm.shard(1).install_fault_hook(hook.clone());
        let mut tx = warm.begin();
        tx.write(0, b"warm-img").unwrap();
        tx.write(4, b"warm-img").unwrap();
        tx.commit().unwrap();
        // ordering: Acquire — read after quiesce.
        let shard1_ios = hook.seen.load(Ordering::Acquire);
        assert!(shard1_ios > 0, "shard 1's sub-commit performs I/O");

        let db = ShardedDb::open(cfg(2));
        let hook = Arc::new(CrashAt {
            k: shard1_ios,
            seen: AtomicU64::new(0),
            latched: AtomicBool::new(false),
            fired: AtomicBool::new(false),
        });
        db.shard(1).install_fault_hook(hook);
        let mut t1 = db.begin();
        let gid = t1.id();
        t1.write(0, b"t1-image").unwrap();
        t1.write(4, b"t1-image").unwrap();
        let err = t1.commit().expect_err("shard 1 dies mid-apply");
        assert!(matches!(err, DbError::CommitInDoubt { gid: g, .. } if g == gid));
        assert!(db.in_doubt(gid));

        // Shard 0 is live and T1's sub-commit there is durable (and
        // marked done), so its pages are not fenced: T2's commit is
        // acknowledged.
        let mut t2 = db.begin();
        t2.write(0, b"t2-newer").unwrap();
        t2.commit().unwrap();

        db.crash();
        let rec = db.recover().unwrap();
        assert_eq!(rec.replayed, vec![gid]);
        assert!(!db.in_doubt(gid));
        assert_eq!(
            &db.read_page(0).unwrap()[..8],
            b"t2-newer",
            "replay must not resurrect T1's stale shard-0 image over T2"
        );
        assert_eq!(&db.read_page(4).unwrap()[..8], b"t1-image");
        assert!(db.verify().unwrap().is_empty());
        assert!(db.audit().is_clean());
    }

    #[test]
    fn in_doubt_intent_fences_unapplied_pages_until_resolved() {
        let db = ShardedDb::open(cfg(2));
        // Hand-stage a decided intent as the apply phase would leave it
        // after a live-shard failure: page 0 (shard 0) applied, page 4
        // (shard 1) not.
        db.inner.coord.intents.lock().push(CrossShardIntent {
            txn: 777,
            ops: vec![
                IntentOp::Write {
                    page: 0,
                    data: b"decided0".to_vec(),
                },
                IntentOp::Write {
                    page: 4,
                    data: b"decided4".to_vec(),
                },
            ],
            done: vec![0],
        });
        assert!(db.in_doubt(777));

        // The unapplied half still owns page 4: commits over it fail
        // fast, naming the in-doubt transaction as holder.
        let mut tx = db.begin();
        tx.write(4, b"racer").unwrap();
        let err = tx.commit().expect_err("fenced by the staged intent");
        assert!(
            matches!(err, DbError::LockConflict { page, holder } if page.0 == 4 && holder.0 == 777),
            "fence surfaces as a lock conflict: {err:?}"
        );
        // The applied half's page is free: later commits there are
        // legitimate and must survive resolution.
        let mut tx = db.begin();
        tx.write(0, b"survivor").unwrap();
        tx.commit().unwrap();

        // Live resolution applies only the missing half and lifts the
        // fence.
        assert_eq!(db.resolve_in_doubt().unwrap(), vec![777]);
        assert!(!db.in_doubt(777));
        assert_eq!(db.staged_intents(), 0);
        assert_eq!(
            &db.read_page(0).unwrap()[..8],
            b"survivor",
            "done shard untouched by resolution"
        );
        assert_eq!(&db.read_page(4).unwrap()[..8], b"decided4");
        let mut tx = db.begin();
        tx.write(4, b"after").unwrap();
        tx.commit().unwrap();
        assert!(db.audit().is_clean());
    }

    #[test]
    fn sharded_state_dump_matches_reads() {
        let db = ShardedDb::open(cfg(3));
        let mut tx = db.begin();
        for p in 0..db.data_pages() {
            tx.write(p, &[p as u8 + 1]).unwrap();
        }
        tx.commit().unwrap();
        let dump = db.state_dump().unwrap();
        assert_eq!(dump.len(), db.data_pages() as usize);
        for p in 0..db.data_pages() {
            assert_eq!(dump[p as usize][0], p as u8 + 1);
            assert_eq!(db.read_page(p).unwrap()[0], p as u8 + 1);
        }
    }

    #[test]
    fn fail_disk_and_media_recover_route_to_owning_shard() {
        let db = ShardedDb::open(cfg(2));
        let mut tx = db.begin();
        tx.write(0, b"survives").unwrap();
        tx.commit().unwrap();
        // Fail a disk of shard 1 (global ids map contiguously).
        let disk = db.disks_per_shard(); // first disk of shard 1
        db.fail_disk(disk);
        // Shard 0's data is untouched; rebuild shard 1's disk.
        assert_eq!(&db.read_page(0).unwrap()[..8], b"survives");
        db.shard(1).replace_disk_blank(0);
        db.media_recover(disk).unwrap();
        assert!(db.audit().is_clean());
    }
}
