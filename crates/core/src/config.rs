//! Engine configuration.

use rda_array::{ArrayConfig, Organization};
use rda_buffer::{BufferConfig, ReplacePolicy};
use rda_wal::LogConfig;

/// Which recovery engine to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The paper's contribution: twin-page parity UNDO. Requires (and
    /// [`DbConfig`] constructors enforce) a twin-parity array.
    Rda,
    /// The traditional baseline: every steal of an uncommitted page is
    /// preceded by before-image logging; the array's parity serves media
    /// recovery only. Runs on a single-parity array.
    Wal,
}

/// Logging granularity (§5.2 vs §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogGranularity {
    /// Full page images; page-level locking.
    Page,
    /// Byte-range diffs; record-level (byte-range) locking. Cheaper in log
    /// volume, and the regime where the paper finds ¬FORCE/ACC + RDA wins.
    Record,
}

/// End-of-transaction discipline (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EotPolicy {
    /// FORCE: all pages modified by the transaction are written to the
    /// database before EOT (transaction-oriented checkpointing, TOC).
    Force,
    /// ¬FORCE: modified pages stay in the buffer; REDO recovery applies
    /// after a crash. Paired with action-consistent checkpoints (ACC).
    NoForce,
}

/// Checkpointing for the ¬FORCE discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointPolicy {
    /// No automatic checkpoints (TOC is implied by FORCE; callers may also
    /// invoke `Database::checkpoint` manually).
    Manual,
    /// Take an ACC checkpoint every `ops` page operations.
    AccEvery {
        /// Page operations between checkpoints (the model's interval `I`,
        /// expressed in operations rather than transfers).
        ops: u64,
    },
}

/// Deliberate protocol breakages for mutation-sensitivity testing.
///
/// The model-based checker (`rda-check`) proves it has teeth by turning
/// one of these on and demonstrating that it finds and shrinks a failing
/// schedule. Every knob defaults to off and must stay off outside tests:
/// each one removes a step the recovery protocol depends on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtocolMutations {
    /// Skip the zero-I/O twin flip at commit. The committed parity twin
    /// then still reconstructs the *pre-transaction* images, so restart
    /// recovery after a post-commit crash rolls an acknowledged
    /// transaction back — exactly the durability violation the twin-page
    /// protocol exists to prevent.
    pub skip_commit_twin_flip: bool,
}

impl ProtocolMutations {
    /// Is any mutation enabled?
    #[must_use]
    pub fn any(self) -> bool {
        self.skip_commit_twin_flip
    }
}

/// Group-commit tuning: concurrent committers batch their durability
/// barrier so one fsync-equivalent (SimDisk billed barrier or FileDisk
/// `FsyncOnBarrier` drain) acknowledges many transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommit {
    /// Bounded wait: how long a batch leader lingers for followers before
    /// forcing, in microseconds. `0` forces immediately (the batch is
    /// whoever had already prepared), keeping single-committer latency
    /// untouched while still exercising the gated code path. The linger
    /// is also skipped whenever the leader's transaction is the only one
    /// in flight, so an uncontended commit never pays the window as ack
    /// latency. Cross-shard note: a `ShardedDb` transaction commits its
    /// sub-transactions sequentially, each through its shard's own gate,
    /// so a gated cross-shard commit's worst-case ack latency is the sum
    /// of the per-shard lingers (`touched_shards × window_micros`); the
    /// uncontended-leader skip makes the common case far cheaper.
    pub window_micros: u64,
    /// Cap on transactions acknowledged by one barrier.
    pub max_batch: usize,
}

impl Default for GroupCommit {
    fn default() -> GroupCommit {
        GroupCommit {
            window_micros: 100,
            max_batch: 32,
        }
    }
}

/// Full engine configuration.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Recovery engine.
    pub engine: EngineKind,
    /// Array layout. For [`EngineKind::Rda`] this must be a twin-parity
    /// configuration.
    pub array: ArrayConfig,
    /// Buffer pool shape and policy.
    pub buffer: BufferConfig,
    /// Log page size and duplexing.
    pub log: LogConfig,
    /// Page or record logging.
    pub granularity: LogGranularity,
    /// FORCE or ¬FORCE at EOT.
    pub eot: EotPolicy,
    /// Checkpointing (meaningful with ¬FORCE).
    pub checkpoint: CheckpointPolicy,
    /// Strict two-phase locking for reads: transactional reads take
    /// page-level shared locks held to EOT, giving serializable
    /// write-read visibility. Off by default (the paper's model evaluates
    /// recovery I/O, not isolation), and orthogonal to the recovery
    /// machinery.
    pub strict_read_locks: bool,
    /// Event-trace ring capacity. `0` (the default) leaves the tracer
    /// disabled; any positive value makes `Database::open` enable the
    /// shared tracer with a ring of that many events. Because the sim
    /// drivers and the crashpoint explorer open their databases from a
    /// cloned `DbConfig`, this is how tracing reaches every replay.
    pub trace_events: usize,
    /// Record commit-path span events (`TxnBegin`, `LogForce`,
    /// `CommitBarrier`, `CommitAck`) into the trace ring. Off by default
    /// so protocol traces keep their historical shape; requires
    /// [`DbConfig::trace_events`] > 0 to have any effect. Span payloads
    /// carry no clocks, so enabling them keeps traces deterministic for
    /// a deterministic schedule.
    pub span_events: bool,
    /// Deliberate protocol breakages for mutation-sensitivity testing.
    /// All off by default; see [`ProtocolMutations`].
    pub mutations: ProtocolMutations,
    /// Engine shards for [`crate::ShardedDb`]: parity groups are striped
    /// round-robin over this many independent engines (own lock table,
    /// Dirty_Set, steal chains, buffer partition, WAL). `1` (the default)
    /// is the classic single-engine database; `Database::open` ignores the
    /// field, `ShardedDb::open` requires `1 ≤ shards ≤ groups`.
    pub shards: u32,
    /// Group commit: `Some` routes `Transaction::commit` through the
    /// commit gate, batching concurrent committers' durability barriers.
    /// `None` (the default) keeps the classic one-barrier-per-commit path.
    pub group_commit: Option<GroupCommit>,
}

impl DbConfig {
    /// A small configuration handy for tests and examples: 4-page parity
    /// groups, 8 groups, 64-byte pages, an 8-frame STEAL/clock buffer,
    /// page logging, FORCE.
    #[must_use]
    pub fn small_test(engine: EngineKind) -> DbConfig {
        let twin = engine == EngineKind::Rda;
        DbConfig {
            engine,
            array: ArrayConfig::new(Organization::RotatedParity, 4, 8)
                .twin(twin)
                .page_size(64),
            buffer: BufferConfig {
                frames: 8,
                steal: true,
                policy: ReplacePolicy::Clock,
            },
            log: LogConfig {
                page_size: 256,
                copies: 2,
                amortized: false,
            },
            granularity: LogGranularity::Page,
            eot: EotPolicy::Force,
            checkpoint: CheckpointPolicy::Manual,
            strict_read_locks: false,
            trace_events: 0,
            span_events: false,
            mutations: ProtocolMutations::default(),
            shards: 1,
            group_commit: None,
        }
    }

    /// The paper's model configuration scaled to a runnable size:
    /// `N = 10` data pages per group, `S/N` groups for the given `s_pages`
    /// database size, 2020-byte pages, buffer of `b_frames` frames.
    #[must_use]
    pub fn paper_like(engine: EngineKind, s_pages: u32, b_frames: usize) -> DbConfig {
        let twin = engine == EngineKind::Rda;
        let n = 10;
        let groups = s_pages.div_ceil(n);
        DbConfig {
            engine,
            array: ArrayConfig::new(Organization::RotatedParity, n, groups).twin(twin),
            buffer: BufferConfig {
                frames: b_frames,
                steal: true,
                policy: ReplacePolicy::Clock,
            },
            log: LogConfig::default(),
            granularity: LogGranularity::Page,
            eot: EotPolicy::Force,
            checkpoint: CheckpointPolicy::Manual,
            strict_read_locks: false,
            trace_events: 0,
            span_events: false,
            mutations: ProtocolMutations::default(),
            shards: 1,
            group_commit: None,
        }
    }

    /// Builder-style: enable event tracing with a ring of `events`.
    #[must_use]
    pub fn trace(mut self, events: usize) -> DbConfig {
        self.trace_events = events;
        self
    }

    /// Builder-style: record commit-path span events (see
    /// [`DbConfig::span_events`]).
    #[must_use]
    pub fn spans(mut self, on: bool) -> DbConfig {
        self.span_events = on;
        self
    }

    /// Builder-style: set granularity.
    #[must_use]
    pub fn granularity(mut self, g: LogGranularity) -> DbConfig {
        self.granularity = g;
        self
    }

    /// Builder-style: set EOT policy.
    #[must_use]
    pub fn eot(mut self, e: EotPolicy) -> DbConfig {
        self.eot = e;
        self
    }

    /// Builder-style: set checkpoint policy.
    #[must_use]
    pub fn checkpoint(mut self, c: CheckpointPolicy) -> DbConfig {
        self.checkpoint = c;
        self
    }

    /// Builder-style: enable deliberate protocol breakages (tests only).
    #[must_use]
    pub fn mutations(mut self, m: ProtocolMutations) -> DbConfig {
        self.mutations = m;
        self
    }

    /// Builder-style: stripe parity groups over `n` engine shards (see
    /// [`crate::ShardedDb`]).
    #[must_use]
    pub fn shards(mut self, n: u32) -> DbConfig {
        self.shards = n;
        self
    }

    /// Builder-style: enable group commit with the given tuning.
    #[must_use]
    pub fn group_commit(mut self, g: GroupCommit) -> DbConfig {
        self.group_commit = Some(g);
        self
    }

    /// Validate internal consistency (RDA needs twin parity, etc.).
    ///
    /// # Panics
    /// Panics with a descriptive message when the configuration is
    /// incoherent; called by `Database::open`.
    pub fn validate(&self) {
        if self.engine == EngineKind::Rda {
            assert!(
                self.array.twin,
                "RDA recovery requires a twin-parity array (ArrayConfig::twin(true))"
            );
        }
        assert!(self.shards >= 1, "shards must be at least 1");
        assert!(
            self.shards <= self.array.groups,
            "cannot stripe {} parity groups over {} shards",
            self.array.groups,
            self.shards
        );
        if let Some(g) = self.group_commit {
            assert!(
                g.max_batch >= 1,
                "group-commit max_batch must be at least 1"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_test_configs_are_coherent() {
        DbConfig::small_test(EngineKind::Rda).validate();
        DbConfig::small_test(EngineKind::Wal).validate();
        assert!(DbConfig::small_test(EngineKind::Rda).array.twin);
        assert!(!DbConfig::small_test(EngineKind::Wal).array.twin);
    }

    #[test]
    fn paper_like_sizes() {
        let c = DbConfig::paper_like(EngineKind::Rda, 5000, 300);
        assert_eq!(c.array.n, 10);
        assert_eq!(c.array.groups, 500);
        assert_eq!(c.array.page_size, 2020);
        assert_eq!(c.buffer.frames, 300);
    }

    #[test]
    #[should_panic(expected = "twin-parity")]
    fn rda_without_twin_rejected() {
        let mut c = DbConfig::small_test(EngineKind::Rda);
        c.array.twin = false;
        c.validate();
    }

    #[test]
    fn mutations_default_off_and_compose() {
        let c = DbConfig::small_test(EngineKind::Rda);
        assert!(!c.mutations.any(), "mutations must default to off");
        let c = c.mutations(ProtocolMutations {
            skip_commit_twin_flip: true,
        });
        assert!(c.mutations.any());
        assert!(c.mutations.skip_commit_twin_flip);
    }

    #[test]
    fn builders_compose() {
        let c = DbConfig::small_test(EngineKind::Wal)
            .granularity(LogGranularity::Record)
            .eot(EotPolicy::NoForce)
            .checkpoint(CheckpointPolicy::AccEvery { ops: 100 })
            .spans(true);
        assert_eq!(c.granularity, LogGranularity::Record);
        assert_eq!(c.eot, EotPolicy::NoForce);
        assert_eq!(c.checkpoint, CheckpointPolicy::AccEvery { ops: 100 });
        assert!(c.span_events);
        assert!(
            !DbConfig::small_test(EngineKind::Rda).span_events,
            "span events must default to off"
        );
    }
}
