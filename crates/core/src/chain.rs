//! The TWIST-style steal chain (paper §4.3).
//!
//! Pages stolen *without* UNDO logging must still be findable after a
//! crash, so the losers' propagated updates can be undone via parity. The
//! paper borrows TWIST's trick: "a technique ... which makes use of a log
//! chain ... pointers ... link together all database pages modified [and
//! written back] ... The head of the chain is written along with the BOT
//! record" — i.e. the chain lives in the *page headers on disk*, updated
//! by the very same page write that steals the page, so it costs **no
//! additional I/O** ("the extra cost ... can be hidden behind ... regular
//! logging").
//!
//! [`ChainDirectory`] models those on-disk headers the same way
//! [`TwinDirectory`](crate::twin::TwinDirectory) models the parity-page
//! headers: a durable side table whose updates always accompany an
//! already-billed page write. Entries are removed at EOT (the header field
//! is dead once the transaction has an outcome in the log; physical
//! reclamation happens lazily on the next steal of the page, which is
//! again a write that is already paid for).

use crate::backend::MetaSink;
use parking_lot::Mutex;
use rda_array::DataPageId;
use rda_wal::TxnId;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Durable registry of parity-riding steals, per transaction.
#[derive(Default)]
pub struct ChainDirectory {
    chains: Mutex<HashMap<TxnId, BTreeSet<DataPageId>>>,
    /// Optional backend journal mirroring every chain mutation, the way a
    /// real chain link travels inside the page write that steals the page.
    sink: Option<Arc<dyn MetaSink>>,
}

impl std::fmt::Debug for ChainDirectory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChainDirectory")
            .field("chains", &self.chains)
            .finish_non_exhaustive()
    }
}

impl ChainDirectory {
    /// Empty directory (freshly formatted database).
    #[must_use]
    pub fn new() -> ChainDirectory {
        ChainDirectory::default()
    }

    /// Directory over chains read back from a backend journal, mirroring
    /// future mutations into `sink`.
    #[must_use]
    pub fn restore(entries: &[(u64, Vec<u32>)], sink: Option<Arc<dyn MetaSink>>) -> ChainDirectory {
        let mut chains: HashMap<TxnId, BTreeSet<DataPageId>> = HashMap::new();
        for (txn, pages) in entries {
            let set = chains.entry(TxnId(*txn)).or_default();
            set.extend(pages.iter().map(|p| DataPageId(*p)));
        }
        chains.retain(|_, set| !set.is_empty());
        ChainDirectory {
            chains: Mutex::new(chains),
            sink,
        }
    }

    /// Record that `txn` stole `page` onto the parity. Called as part of
    /// the steal's data-page write (no extra transfer).
    pub fn note_steal(&self, txn: TxnId, page: DataPageId) {
        self.chains.lock().entry(txn).or_default().insert(page);
        if let Some(sink) = &self.sink {
            sink.chain_steal(txn.0, page.0);
        }
    }

    /// The pages `txn` has stolen onto the parity (its chain), in page
    /// order.
    #[must_use]
    pub fn pages_of(&self, txn: TxnId) -> Vec<DataPageId> {
        self.chains
            .lock()
            .get(&txn)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Does `txn` have any parity-riding steals?
    #[must_use]
    pub fn has_chain(&self, txn: TxnId) -> bool {
        self.chains.lock().contains_key(&txn)
    }

    /// Every transaction with a non-empty chain, in sorted order. The
    /// invariant auditor checks this against the live-transaction table:
    /// a chain entry surviving its transaction's EOT is a leak.
    #[must_use]
    pub fn txns(&self) -> Vec<TxnId> {
        let mut v: Vec<TxnId> = self.chains.lock().keys().copied().collect();
        v.sort();
        v
    }

    /// Drop `txn`'s chain (EOT — the outcome record in the log supersedes
    /// it).
    pub fn clear_txn(&self, txn: TxnId) {
        let existed = self.chains.lock().remove(&txn).is_some();
        if existed {
            if let Some(sink) = &self.sink {
                sink.chain_clear_txn(txn.0);
            }
        }
    }

    /// Remove one page from `txn`'s chain (its undo has completed and the
    /// restored page write carried the header reset).
    pub fn clear_page(&self, txn: TxnId, page: DataPageId) {
        let mut chains = self.chains.lock();
        let mut removed = false;
        if let Some(set) = chains.get_mut(&txn) {
            removed = set.remove(&page);
            if set.is_empty() {
                chains.remove(&txn);
            }
        }
        drop(chains);
        if removed {
            if let Some(sink) = &self.sink {
                sink.chain_clear_page(txn.0, page.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T1: TxnId = TxnId(1);
    const T2: TxnId = TxnId(2);

    #[test]
    fn chains_accumulate_per_txn() {
        let c = ChainDirectory::new();
        assert!(!c.has_chain(T1));
        c.note_steal(T1, DataPageId(5));
        c.note_steal(T1, DataPageId(2));
        c.note_steal(T2, DataPageId(9));
        assert_eq!(c.pages_of(T1), vec![DataPageId(2), DataPageId(5)]);
        assert_eq!(c.pages_of(T2), vec![DataPageId(9)]);
    }

    #[test]
    fn duplicate_steal_is_idempotent() {
        let c = ChainDirectory::new();
        c.note_steal(T1, DataPageId(5));
        c.note_steal(T1, DataPageId(5));
        assert_eq!(c.pages_of(T1).len(), 1);
    }

    #[test]
    fn clear_txn_drops_whole_chain() {
        let c = ChainDirectory::new();
        c.note_steal(T1, DataPageId(5));
        c.note_steal(T2, DataPageId(6));
        c.clear_txn(T1);
        assert!(c.pages_of(T1).is_empty());
        assert!(c.has_chain(T2));
    }

    #[test]
    fn clear_page_trims_and_collapses() {
        let c = ChainDirectory::new();
        c.note_steal(T1, DataPageId(5));
        c.note_steal(T1, DataPageId(6));
        c.clear_page(T1, DataPageId(5));
        assert_eq!(c.pages_of(T1), vec![DataPageId(6)]);
        c.clear_page(T1, DataPageId(6));
        assert!(!c.has_chain(T1));
        // Clearing a non-existent entry is a no-op.
        c.clear_page(T2, DataPageId(1));
    }
}
