//! Public database facade: [`Database`] and [`Transaction`].

use crate::backend::BackendSetup;
use crate::engine::Engine;
use crate::error::{DbError, Result};
use crate::recovery::RecoveryReport;
use crate::DbConfig;
use parking_lot::Mutex;
use rda_array::{BlockDevice, DataPageId, DefaultDisk, DiskId, StatsSnapshot};
use rda_buffer::BufferStats;
use rda_obs::{MetricsRegistry, ObsHub, TraceSnapshot, Tracer};
use rda_wal::TxnId;
use std::sync::Arc;

/// Aggregate physical-I/O statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct DbStats {
    /// Array (data + parity) transfers.
    pub array: StatsSnapshot,
    /// Log-device transfers.
    pub log: StatsSnapshot,
    /// Buffer pool counters.
    pub buffer: BufferStats,
}

impl DbStats {
    /// Total page transfers — the unit of the paper's cost model.
    #[must_use]
    pub fn total_transfers(&self) -> u64 {
        self.array.transfers() + self.log.transfers()
    }

    /// Add another database's counters into this one (merging per-shard
    /// stats into an aggregate view).
    pub fn accumulate(&mut self, other: &DbStats) {
        self.array.accumulate(&other.array);
        self.log.accumulate(&other.log);
        self.buffer.accumulate(&other.buffer);
    }

    /// Transfers between `earlier` and `self`.
    #[must_use]
    pub fn delta(&self, earlier: &DbStats) -> DbStats {
        DbStats {
            array: self.array.delta(&earlier.array),
            log: self.log.delta(&earlier.log),
            buffer: BufferStats {
                hits: self.buffer.hits - earlier.buffer.hits,
                misses: self.buffer.misses - earlier.buffer.misses,
                steals: self.buffer.steals - earlier.buffer.steals,
                writebacks: self.buffer.writebacks - earlier.buffer.writebacks,
                drops: self.buffer.drops - earlier.buffer.drops,
                eviction_scans: self.buffer.eviction_scans - earlier.buffer.eviction_scans,
            },
        }
    }
}

/// A database running one of the two recovery engines over a simulated
/// redundant disk array.
///
/// Thread-safe: the engine is serialized behind a mutex (the paper models
/// logical concurrency of `P` transactions over one I/O subsystem; true
/// parallel execution would only perturb the transfer counts being
/// measured).
///
/// Generic over the [`BlockDevice`] backing each spindle; the default is
/// the deterministic simulated disk, and a real (file-backed) device slots
/// in through [`Database::open_with`].
pub struct Database<D: BlockDevice = DefaultDisk> {
    engine: Arc<Mutex<Engine<D>>>,
    /// Present when the configuration enables group commit; routes
    /// `Transaction::commit` through the batching gate.
    gate: Option<Arc<crate::gate::CommitGate>>,
}

// Manual impl: `#[derive(Clone)]` would wrongly require `D: Clone`.
impl<D: BlockDevice> Clone for Database<D> {
    fn clone(&self) -> Self {
        Database {
            engine: Arc::clone(&self.engine),
            gate: self.gate.clone(),
        }
    }
}

impl Database {
    /// Create a fresh, zero-filled database over simulated disks.
    ///
    /// # Panics
    /// Panics if the configuration is incoherent (see
    /// [`DbConfig::validate`]).
    #[must_use]
    pub fn open(cfg: DbConfig) -> Database {
        let group_commit = cfg.group_commit;
        let engine = Arc::new(Mutex::new(Engine::open(cfg)));
        let gate = Self::build_gate(group_commit, &engine);
        Database { engine, gate }
    }
}

impl<D: BlockDevice> Database<D> {
    /// Create — or, when the setup carries
    /// [`RestoredState`](crate::backend::RestoredState), reopen — a
    /// database over backend-supplied block devices. A reopened database
    /// comes up in needs-recovery state: run [`Database::recover`] before
    /// new work, exactly as after [`Database::crash`].
    ///
    /// # Panics
    /// Panics if the configuration is incoherent or the supplied disks do
    /// not match the configured geometry.
    #[must_use]
    pub fn open_with(cfg: DbConfig, setup: BackendSetup<D>) -> Database<D> {
        let group_commit = cfg.group_commit;
        let engine = Arc::new(Mutex::new(Engine::open_with(cfg, setup)));
        let gate = Self::build_gate(group_commit, &engine);
        Database { engine, gate }
    }

    fn build_gate(
        group_commit: Option<crate::config::GroupCommit>,
        engine: &Arc<Mutex<Engine<D>>>,
    ) -> Option<Arc<crate::gate::CommitGate>> {
        group_commit.map(|gc| {
            let registry = engine.lock().obs.metrics.clone();
            Arc::new(crate::gate::CommitGate::new(gc, &registry))
        })
    }

    /// Begin a transaction.
    ///
    /// # Panics
    /// Panics if the database has crashed and not yet recovered — run
    /// [`Database::recover`] first.
    #[must_use]
    pub fn begin(&self) -> Transaction<D> {
        let id = self
            .engine
            .lock()
            .begin()
            .expect("database needs recovery before begin()");
        Transaction {
            engine: Arc::clone(&self.engine),
            gate: self.gate.clone(),
            id,
            finished: false,
        }
    }

    /// Read the current contents of a page, outside any transaction
    /// (reflects the latest propagated state; equal to the last committed
    /// state when no transaction is writing the page).
    ///
    /// # Errors
    /// [`DbError::NeedsRecovery`] after an unrecovered crash;
    /// [`DbError::BadPage`] for an out-of-range page; array errors when the
    /// page is unreadable even in degraded mode.
    pub fn read_page(&self, page: u32) -> Result<Vec<u8>> {
        let mut engine = self.engine.lock();
        let txn = engine.begin()?;
        let out = engine.txn_read(txn, DataPageId(page));
        let _ = engine.txn_abort(txn);
        out
    }

    /// Number of data pages.
    #[must_use]
    pub fn data_pages(&self) -> u32 {
        self.engine.lock().dur.array.data_pages()
    }

    /// Number of disks in the array (data + parity spindles).
    #[must_use]
    pub fn disks(&self) -> u16 {
        self.engine.lock().dur.array.geometry().disks()
    }

    /// Read every data page inside one transaction and return the images
    /// in page order — the state-dump the model-based checker diffs
    /// against its reference model. Using a single transaction makes the
    /// dump atomic under `strict_read_locks` (every page is S-locked
    /// before the first image is returned); at quiescence it is simply
    /// the committed state.
    ///
    /// # Errors
    /// [`DbError::NeedsRecovery`] after an unrecovered crash;
    /// [`DbError::LockConflict`] when an active transaction holds a page
    /// exclusively; array errors when a page is unreadable even in
    /// degraded mode.
    pub fn state_dump(&self) -> Result<Vec<Vec<u8>>> {
        let mut engine = self.engine.lock();
        let txn = engine.begin()?;
        let pages = engine.dur.array.data_pages();
        let mut dump = Vec::with_capacity(pages as usize);
        let mut out = Ok(());
        for page in 0..pages {
            match engine.txn_read(txn, DataPageId(page)) {
                Ok(image) => dump.push(image),
                Err(e) => {
                    out = Err(e);
                    break;
                }
            }
        }
        let _ = engine.txn_abort(txn);
        out.map(|()| dump)
    }

    /// Take an action-consistent checkpoint now.
    ///
    /// # Errors
    /// [`DbError::NeedsRecovery`] after an unrecovered crash; array errors
    /// when flushing dirty pages fails.
    pub fn checkpoint(&self) -> Result<()> {
        self.engine.lock().checkpoint()
    }

    /// Simulate a system failure: volatile state (buffer, dirty set, lock
    /// table, unforced log tail, active transactions) is lost. Until
    /// [`Database::recover`] runs, new work is refused.
    pub fn crash(&self) {
        self.engine.lock().crash();
    }

    /// Run restart recovery after a crash.
    ///
    /// # Errors
    /// Array errors when the UNDO/REDO passes cannot read or write the
    /// pages they need (e.g. a disk failed during the outage).
    pub fn recover(&self) -> Result<RecoveryReport> {
        self.engine.lock().recover()
    }

    /// Convenience: crash then recover.
    ///
    /// # Errors
    /// Same as [`Database::recover`].
    pub fn crash_and_recover(&self) -> Result<RecoveryReport> {
        let mut engine = self.engine.lock();
        engine.crash();
        engine.recover()
    }

    /// Truncate the write-ahead log to the oldest record recovery could
    /// still need (last checkpoint / earliest active BOT). Returns the
    /// number of records discarded. Invalidates older archives.
    ///
    /// # Errors
    /// [`DbError::NeedsRecovery`] after an unrecovered crash.
    pub fn truncate_log(&self) -> Result<u64> {
        self.engine.lock().truncate_log()
    }

    /// Take a transaction-consistent full archive copy (the §1 baseline's
    /// backup pass). Requires quiescence; bills one read per page.
    ///
    /// # Errors
    /// [`DbError::ActiveTransactions`] unless quiescent; array errors when
    /// a page cannot be read.
    pub fn archive_dump(&self) -> Result<crate::Archive> {
        self.engine.lock().archive_dump()
    }

    /// Restore from an archive and roll forward from the redo log — the
    /// traditional media recovery the paper argues is too expensive.
    /// Returns the number of redo records applied.
    ///
    /// # Errors
    /// [`DbError::ActiveTransactions`] unless quiescent; array errors when
    /// writing restored pages fails.
    pub fn archive_restore(&self, archive: &crate::Archive) -> Result<u64> {
        self.engine.lock().archive_restore(archive)
    }

    /// Fail a disk (media failure injection).
    pub fn fail_disk(&self, disk: u16) {
        self.engine.lock().dur.array.fail_disk(DiskId(disk));
    }

    /// Is the disk currently failed (media recovery owed)?
    #[must_use]
    pub fn disk_failed(&self, disk: u16) -> bool {
        self.engine.lock().dur.array.disk_failed(DiskId(disk))
    }

    /// Fail the whole disk holding a data page (fault injection).
    pub fn fail_disk_of_page(&self, page: u32) {
        let engine = self.engine.lock();
        let loc = engine.dur.array.locate_data(DataPageId(page));
        engine.dur.array.fail_disk(loc.disk);
    }

    /// Inject a latent sector error under a data page (fault injection;
    /// the next scrub or degraded read repairs it).
    pub fn corrupt_data_page(&self, page: u32) {
        let engine = self.engine.lock();
        let loc = engine.dur.array.locate_data(DataPageId(page));
        engine.dur.array.corrupt(loc);
    }

    /// Inject a latent sector error under a group's committed parity page
    /// (fault injection).
    pub fn corrupt_committed_parity(&self, group: u32) {
        let engine = self.engine.lock();
        let g = rda_array::GroupId(group);
        let slot = engine.committed_slot(g);
        if let Some(loc) = engine.dur.array.geometry().parity_loc(g, slot) {
            engine.dur.array.corrupt(loc);
        }
    }

    /// Tear the parity twin covering the current on-disk contents of a
    /// group (the working twin while the group is dirty): the block is
    /// left half-overwritten and reads back as
    /// [`ArrayError::TornPage`](rda_array::ArrayError::TornPage) until
    /// rewritten. Fault injection for torn-write recovery tests.
    pub fn tear_current_parity(&self, group: u32) {
        let engine = self.engine.lock();
        let g = rda_array::GroupId(group);
        let slot = engine.disk_read_slot(g);
        if let Some(loc) = engine.dur.array.geometry().parity_loc(g, slot) {
            engine.dur.array.tear(loc);
        }
    }

    /// Tear the block under a data page (fault injection; see
    /// [`Database::tear_current_parity`]).
    pub fn tear_data_page(&self, page: u32) {
        let engine = self.engine.lock();
        let loc = engine.dur.array.locate_data(DataPageId(page));
        engine.dur.array.tear(loc);
    }

    /// Install a deterministic fault hook: every physical array I/O is
    /// offered to `hook` before it touches a disk (see
    /// [`rda_array::FaultHook`]). Replaces any previous hook and resets
    /// the fault counters.
    pub fn install_fault_hook(&self, hook: std::sync::Arc<dyn rda_array::FaultHook>) {
        self.engine.lock().dur.array.install_fault_hook(hook);
    }

    /// Stop consulting the installed fault hook (its accumulated
    /// [`Database::fault_stats`] remain readable).
    pub fn clear_fault_hook(&self) {
        self.engine.lock().dur.array.clear_fault_hook();
    }

    /// Counters for the faults an installed hook actually fired, or
    /// `None` if no hook was ever installed.
    #[must_use]
    pub fn fault_stats(&self) -> Option<std::sync::Arc<rda_array::FaultStats>> {
        self.engine.lock().dur.array.fault_stats()
    }

    /// Install a blank replacement for a failed disk without rebuilding
    /// it (use before [`Database::archive_restore`] after a multi-disk
    /// disaster; single failures should use [`Database::media_recover`],
    /// which replaces and rebuilds in one step).
    pub fn replace_disk_blank(&self, disk: u16) {
        self.engine
            .lock()
            .dur
            .array
            .replace_disk_blank(DiskId(disk));
    }

    /// Rebuild a failed disk from the surviving group members. Requires
    /// quiescence (no active transactions).
    ///
    /// # Errors
    /// [`DbError::ActiveTransactions`] unless quiescent;
    /// [`ArrayError::Unrecoverable`](rda_array::ArrayError::Unrecoverable)
    /// when a second failure blocks reconstruction.
    pub fn media_recover(&self, disk: u16) -> Result<u64> {
        self.engine.lock().media_recover(DiskId(disk))
    }

    /// Rebuild the (failed) disk holding `page` — the recovery-side
    /// pairing of [`Database::fail_disk_of_page`].
    ///
    /// # Errors
    /// Same as [`Database::media_recover`].
    pub fn media_recover_of_page(&self, page: u32) -> Result<u64> {
        let mut engine = self.engine.lock();
        let disk = engine.dur.array.locate_data(DataPageId(page)).disk;
        engine.media_recover(disk)
    }

    /// Current I/O statistics.
    #[must_use]
    pub fn stats(&self) -> DbStats {
        let engine = self.engine.lock();
        DbStats {
            array: engine.dur.array.stats().snapshot(),
            log: engine.dur.log_store.stats().snapshot(),
            buffer: engine.buffer.stats(),
        }
    }

    /// Per-disk transfer totals of the array (load-balance view).
    #[must_use]
    pub fn stats_per_disk(&self) -> Vec<u64> {
        self.engine.lock().dur.array.stats().per_disk()
    }

    /// Total bytes appended durably to the log (one copy) — the quantity
    /// the paper's record-logging analysis divides by `l_p`.
    #[must_use]
    pub fn log_bytes(&self) -> u64 {
        self.engine.lock().dur.log_store.bytes()
    }

    /// Scrub the array's parity invariants; returns violations (empty when
    /// consistent). Bills array reads like a real scrubber.
    ///
    /// # Errors
    /// Array errors when a parity or data page cannot be read at all (a
    /// *mismatch* is reported in the returned list, not as an error).
    pub fn verify(&self) -> Result<Vec<String>> {
        self.engine.lock().verify_parity()
    }

    /// Patrol scrub: read every data and committed-parity page, repairing
    /// latent sector errors from parity. Requires quiescence.
    ///
    /// # Errors
    /// [`DbError::ActiveTransactions`] unless quiescent; array errors when
    /// repair writes fail.
    pub fn scrub(&self) -> Result<crate::ScrubReport> {
        self.engine.lock().scrub_repair()
    }

    /// Number of transactions currently active.
    #[must_use]
    pub fn active_transactions(&self) -> usize {
        self.engine.lock().active.len()
    }

    /// This database's observability hub (shared event tracer + metrics
    /// registry). Cheap to clone; all handles alias the same state.
    #[must_use]
    pub fn obs(&self) -> ObsHub {
        self.engine.lock().obs.clone()
    }

    /// The shared metrics registry (counters, views over the I/O and
    /// buffer stats, histograms).
    #[must_use]
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.engine.lock().obs.metrics)
    }

    /// The shared event tracer. Enabled at open time when
    /// [`DbConfig::trace_events`](crate::DbConfig) is positive, or at any
    /// point via [`rda_obs::Tracer::enable`].
    #[must_use]
    pub fn tracer(&self) -> Arc<Tracer> {
        Arc::clone(&self.engine.lock().obs.tracer)
    }

    /// Snapshot of the retained trace events (oldest first) plus the
    /// ring's overwrite count.
    #[must_use]
    pub fn trace_snapshot(&self) -> TraceSnapshot {
        self.engine.lock().obs.tracer.snapshot()
    }

    /// Deterministic JSON of every counter and view in the metrics
    /// registry (histograms excluded) — byte-comparable across replays
    /// of the same seed.
    #[must_use]
    pub fn metrics_counters_json(&self) -> String {
        self.engine.lock().obs.metrics.counters_json()
    }

    /// Full JSON export of the metrics registry, histograms included.
    #[must_use]
    pub fn metrics_json(&self) -> String {
        self.engine.lock().obs.metrics.to_json()
    }

    /// Prometheus text exposition of the metrics registry.
    #[must_use]
    pub fn metrics_prometheus(&self) -> String {
        self.engine.lock().obs.metrics.to_prometheus()
    }

    /// Non-deterministic JSON summary of every latency histogram
    /// (interpolated p50/p99/p999 + mean) — the timing complement of
    /// [`Database::metrics_counters_json`].
    #[must_use]
    pub fn metrics_histograms_json(&self) -> String {
        self.engine.lock().obs.metrics.histograms_json()
    }

    /// The `n` most lock-contended pages as
    /// `[{"page":P,"conflicts":C},...]`, most contended first.
    #[must_use]
    pub fn top_contended_json(&self, n: usize) -> String {
        self.engine.lock().obs.locks.top_contended_json(n)
    }

    /// Install `hook` to run after every commit/checkpoint durability
    /// barrier — the seam the file backend's flight recorder flushes
    /// through. Replaces any previous hook. The hook runs with the
    /// engine lock held; it must not call back into the database.
    pub fn set_barrier_hook(&self, hook: Arc<dyn Fn() + Send + Sync>) {
        self.engine.lock().barrier_hook = Some(hook);
    }

    /// Hand the engine the pre-crash flight record the backend read at
    /// reopen; the next [`Database::recover`] attaches it to its
    /// [`RecoveryReport`].
    pub fn set_prior_flight(&self, flight: rda_obs::FlightRecord) {
        self.engine.lock().prior_flight = Some(flight);
    }

    /// Run the cross-layer invariant auditor (parity-vs-twins XOR
    /// recompute, `Dirty_Set` cross-checks, lock/chain leak detection) on
    /// the current state. Reads the array through the unbilled peek
    /// interface, so the transfer counters are untouched. With the
    /// `paranoid` feature the same auditor also runs automatically after
    /// every steal, commit, abort and scrub.
    #[must_use]
    pub fn audit(&self) -> crate::AuditReport {
        self.engine.lock().run_audit()
    }

    /// Overwrite a group's *committed* parity twin with readable garbage
    /// (fault injection for the auditor: unlike
    /// [`Database::corrupt_committed_parity`], the sector stays readable,
    /// so only an XOR recompute can notice).
    pub fn scribble_committed_parity(&self, group: u32) {
        let engine = self.engine.lock();
        let g = rda_array::GroupId(group);
        let slot = engine.committed_slot(g);
        if let Ok(mut parity) = engine.dur.array.peek_parity(g, slot) {
            for (i, b) in parity.as_mut().iter_mut().enumerate() {
                *b ^= 0xA5_u8.wrapping_add(i as u8);
            }
            let _ = engine.dur.array.write_parity(g, slot, &parity);
        }
    }
}

/// A transaction handle. Dropped without [`Transaction::commit`], it aborts
/// (best-effort).
pub struct Transaction<D: BlockDevice = DefaultDisk> {
    engine: Arc<Mutex<Engine<D>>>,
    gate: Option<Arc<crate::gate::CommitGate>>,
    id: TxnId,
    finished: bool,
}

impl<D: BlockDevice> Transaction<D> {
    /// This transaction's identifier.
    #[must_use]
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Read a page.
    ///
    /// # Errors
    /// [`DbError::LockConflict`] when another transaction writes the page;
    /// [`DbError::BadPage`] for an out-of-range page.
    pub fn read(&mut self, page: u32) -> Result<Vec<u8>> {
        self.engine.lock().txn_read(self.id, DataPageId(page))
    }

    /// Overwrite a page (page-logging granularity). Payloads shorter than
    /// the page are zero-padded.
    ///
    /// # Errors
    /// [`DbError::LockConflict`] on lock conflict; [`DbError::BadPage`] /
    /// [`DbError::PageOverflow`] for bad addresses;
    /// [`DbError::WrongGranularity`] under record logging.
    pub fn write(&mut self, page: u32, data: &[u8]) -> Result<()> {
        self.engine
            .lock()
            .txn_write(self.id, DataPageId(page), data)
    }

    /// Update a byte range of a page (record-logging granularity).
    ///
    /// # Errors
    /// [`DbError::LockConflict`] on lock conflict; [`DbError::BadPage`] /
    /// [`DbError::PageOverflow`] for bad addresses;
    /// [`DbError::WrongGranularity`] under page logging.
    pub fn update(&mut self, page: u32, offset: usize, data: &[u8]) -> Result<()> {
        self.engine
            .lock()
            .txn_update(self.id, DataPageId(page), offset, data)
    }

    /// Commit. Consumes the handle.
    ///
    /// # Errors
    /// [`DbError::UnknownTxn`] if a crash wiped the transaction; array
    /// errors when the commit-time parity flip or log force fails.
    pub fn commit(mut self) -> Result<TxnId> {
        self.finished = true;
        match &self.gate {
            // Group commit: batch this committer's durability barrier
            // with any concurrent ones.
            Some(gate) => gate.commit(&self.engine, self.id)?,
            None => self.engine.lock().txn_commit(self.id)?,
        }
        Ok(self.id)
    }

    /// Abort and roll back. Consumes the handle.
    ///
    /// # Errors
    /// [`DbError::UnknownTxn`] if a crash wiped the transaction; array
    /// errors when rollback I/O fails.
    pub fn abort(mut self) -> Result<()> {
        self.finished = true;
        self.engine.lock().txn_abort(self.id)
    }
}

impl<D: BlockDevice> Drop for Transaction<D> {
    fn drop(&mut self) {
        if !self.finished {
            let mut engine = self.engine.lock();
            // After a crash the transaction is already gone; ignore.
            // `Array(Crashed)` is the same death observed mid-flight: the
            // power latch is down, the abort's I/O is refused, and restart
            // recovery will undo the transaction as a loser.
            match engine.txn_abort(self.id) {
                Ok(())
                | Err(
                    DbError::UnknownTxn(_)
                    | DbError::NeedsRecovery
                    | DbError::Array(rda_array::ArrayError::Crashed),
                ) => {}
                Err(e) => panic!("abort on drop failed: {e}"),
            }
        }
    }
}
