//! Group commit: the commit gate.
//!
//! Concurrent committers each run commit phase 1 (`txn_commit_prepare`:
//! write-backs, REDO records, the commit record itself) under the engine
//! lock, then *enqueue* at the gate instead of forcing the log. Whoever
//! finds the gate leaderless becomes the batch leader: it lingers for a
//! bounded window collecting followers (skipped when no other
//! transaction is in flight — an uncontended leader would only be adding
//! the window to its own ack latency), then takes the engine lock once
//! and retires the whole batch with a single durability barrier + log
//! force (`commit_force_barrier`) followed by per-transaction finalize
//! (twin flips, lock release, ack). One fsync-equivalent acknowledges
//! many transactions.
//!
//! Lock order is strictly gate → engine and the two are never held
//! together: the leader drops the gate lock before touching the engine
//! and re-takes it only to publish results. Correctness of the widened
//! prepare→finalize window rests on the prepared transactions still
//! holding their page locks (isolation) and their commit records being
//! unforced (a crash before the batch's force makes them ordinary losers;
//! nothing has been acknowledged).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use rda_array::{BlockDevice, DataPageId};
use rda_obs::{Counter, Histogram, MetricsRegistry};

use crate::config::GroupCommit;
use crate::engine::Engine;
use crate::error::Result;
use rda_wal::TxnId;

/// Batch-size histogram buckets (transactions per barrier).
const BATCH_BOUNDS: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];

/// A transaction parked at the gate: prepared, waiting for a barrier.
type Prepared = (TxnId, Vec<DataPageId>);

#[derive(Default)]
struct GateState {
    /// Prepared transactions awaiting the next batch, in prepare order.
    queue: Vec<Prepared>,
    /// Is some committer currently driving a barrier?
    leader_active: bool,
    /// Finalize outcomes keyed by txn id, collected by their owners.
    results: HashMap<u64, Result<()>>,
}

/// The gate itself: one per `Database`, shared by all its transactions.
pub struct CommitGate {
    cfg: GroupCommit,
    state: Mutex<GateState>,
    cv: Condvar,
    batches: Counter,
    batched_txns: Counter,
    batch_size: Arc<Histogram>,
}

impl CommitGate {
    /// Build a gate and register its metrics
    /// (`group_commit_batches_total`, `group_commit_txns_total`,
    /// `group_commit_batch_size`).
    #[must_use]
    pub fn new(cfg: GroupCommit, metrics: &MetricsRegistry) -> CommitGate {
        CommitGate {
            cfg,
            state: Mutex::new(GateState::default()),
            cv: Condvar::new(),
            batches: metrics.counter("group_commit_batches_total"),
            batched_txns: metrics.counter("group_commit_txns_total"),
            batch_size: metrics.histogram("group_commit_batch_size", &BATCH_BOUNDS),
        }
    }

    /// Commit `txn` through the gate: prepare under the engine lock,
    /// enqueue, then either lead a batch or wait to be retired by one.
    ///
    /// # Errors
    /// Phase-1 errors (lock conflicts, crashed array) surface directly;
    /// a batch-wide force/barrier failure is returned to every member
    /// of the batch.
    pub fn commit<D: BlockDevice>(&self, engine: &Mutex<Engine<D>>, txn: TxnId) -> Result<()> {
        let written = engine.lock().txn_commit_prepare(txn)?;
        {
            let mut st = self.state.lock();
            st.queue.push((txn, written));
            // Wake a window-waiting leader so a full batch closes early.
            self.cv.notify_all();
        }
        loop {
            let mut st = self.state.lock();
            if let Some(r) = st.results.remove(&txn.0) {
                return r;
            }
            if st.leader_active {
                self.cv.wait(&mut st);
            } else {
                // Nobody is driving a barrier that could cover us — take
                // over. (Also how stragglers beyond a full batch's
                // max_batch cap get their own leader.)
                st.leader_active = true;
                drop(st);
                self.run_batch(engine);
            }
        }
    }

    /// Drive one batch: linger for followers (bounded window), then one
    /// barrier + per-transaction finalize under a single engine lock
    /// acquisition. Publishes per-transaction results and steps down.
    fn run_batch<D: BlockDevice>(&self, engine: &Mutex<Engine<D>>) {
        // How many committers could plausibly still join this batch?
        // Sampled before touching gate state (gate and engine locks are
        // never held together). Every queued committer is still counted
        // in `active` — prepare does not retire it — so once the queue
        // holds every active transaction there is nobody left to linger
        // for: an uncontended leader forces immediately instead of
        // paying the whole window as pure ack latency.
        let in_flight = engine.lock().active.len();
        let batch: Vec<Prepared> = {
            let mut st = self.state.lock();
            let target = self.cfg.max_batch.min(in_flight);
            if self.cfg.window_micros > 0 && st.queue.len() < target {
                let deadline = Instant::now() + Duration::from_micros(self.cfg.window_micros);
                while st.queue.len() < target {
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left == Duration::ZERO {
                        break;
                    }
                    self.cv.wait_for(&mut st, left);
                }
            }
            let take = st.queue.len().min(self.cfg.max_batch);
            st.queue.drain(..take).collect()
        };
        let mut results: Vec<(TxnId, Result<()>)> = Vec::with_capacity(batch.len());
        if !batch.is_empty() {
            let ids: Vec<TxnId> = batch.iter().map(|(t, _)| *t).collect();
            let mut eng = engine.lock();
            match eng.commit_force_barrier(&ids) {
                Ok(()) => {
                    for (t, written) in &batch {
                        results.push((*t, eng.txn_commit_finalize(*t, written)));
                    }
                }
                // A failed barrier (crash, dead disk) fails the whole
                // batch: no member was acknowledged, all stay unforced
                // losers for recovery.
                Err(e) => {
                    for (t, _) in &batch {
                        results.push((*t, Err(e.clone())));
                    }
                }
            }
            drop(eng);
            self.batches.inc();
            self.batched_txns.add(batch.len() as u64);
            self.batch_size.observe(batch.len() as u64);
        }
        let mut st = self.state.lock();
        st.leader_active = false;
        for (t, r) in results {
            st.results.insert(t.0, r);
        }
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use crate::{Database, DbConfig, EngineKind, GroupCommit};

    fn gated(window_micros: u64) -> DbConfig {
        DbConfig::small_test(EngineKind::Rda).group_commit(GroupCommit {
            window_micros,
            max_batch: 32,
        })
    }

    #[test]
    fn gated_commits_are_durable_and_batched() {
        let db = Database::open(gated(200));
        let threads = 4;
        let per_thread = 25u32;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let db = db.clone();
                scope.spawn(move || {
                    // Distinct pages per thread: no lock conflicts, so
                    // every commit must succeed.
                    let page = t; // pages 0..4 sit in groups 0..1
                    for i in 1..=per_thread {
                        let mut tx = db.begin();
                        tx.write(page, &i.to_le_bytes()).unwrap();
                        tx.commit().unwrap();
                    }
                });
            }
        });
        for t in 0..threads {
            let got = db.read_page(t).unwrap();
            assert_eq!(&got[..4], &per_thread.to_le_bytes());
        }
        let commits = db.metrics().counter("engine_commits_total").get();
        let batches = db.metrics().counter("group_commit_batches_total").get();
        let batched = db.metrics().counter("group_commit_txns_total").get();
        assert_eq!(commits, u64::from(threads) * u64::from(per_thread));
        assert_eq!(batched, commits, "every commit went through the gate");
        assert!(batches >= 1 && batches <= batched);
        assert!(db.audit().is_clean());
        // Acked commits survive a crash: the gate forced them.
        db.crash_and_recover().unwrap();
        for t in 0..threads {
            let got = db.read_page(t).unwrap();
            assert_eq!(&got[..4], &per_thread.to_le_bytes());
        }
    }

    #[test]
    fn uncontended_leader_skips_the_linger_window() {
        // A long window must not be paid as ack latency when the leader's
        // own transaction is the only one in flight.
        let db = Database::open(gated(200_000)); // 200 ms window
        let start = std::time::Instant::now();
        for i in 1u32..=3 {
            let mut tx = db.begin();
            tx.write(3, &i.to_le_bytes()).unwrap();
            tx.commit().unwrap();
        }
        assert!(
            start.elapsed() < std::time::Duration::from_millis(200),
            "3 uncontended commits must not linger (took {:?})",
            start.elapsed()
        );
        assert_eq!(&db.read_page(3).unwrap()[..4], &3u32.to_le_bytes());
        db.crash_and_recover().unwrap();
        assert_eq!(&db.read_page(3).unwrap()[..4], &3u32.to_le_bytes());
    }

    #[test]
    fn zero_window_gate_preserves_single_committer_semantics() {
        let db = Database::open(gated(0));
        for i in 1u32..=10 {
            let mut tx = db.begin();
            tx.write(7, &i.to_le_bytes()).unwrap();
            tx.commit().unwrap();
        }
        assert_eq!(&db.read_page(7).unwrap()[..4], &10u32.to_le_bytes());
        let batches = db.metrics().counter("group_commit_batches_total").get();
        assert_eq!(
            batches, 10,
            "uncontended zero-window gate: one txn per batch"
        );
        db.crash_and_recover().unwrap();
        assert_eq!(&db.read_page(7).unwrap()[..4], &10u32.to_le_bytes());
    }
}
