//! Archive-based media recovery — the traditional scheme the paper's
//! introduction argues against (§1: "media recovery is performed by
//! loading the archive copy of the database and [applying] the redo log
//! ... the cost ... is quite high ... redundant disk arrays provide an
//! alternative").
//!
//! Implemented so the comparison can be *measured*: an [`Archive`] is a
//! full dump of every data page (billed reads) plus the log position at
//! dump time; restore rewrites the whole database group by group (billed
//! full-stripe writes) and replays the committed work logged since the
//! dump. Contrast with `media_recover`, which touches only the failed
//! disk's blocks.

use crate::engine::Engine;
use crate::error::{DbError, Result};
use rda_array::{BlockDevice, DataPageId, GroupId, Page, ParitySlot};
use rda_wal::{Analysis, LogRecord, Lsn};
use std::collections::BTreeSet;

/// A point-in-time archive copy of the database.
pub struct Archive {
    /// Page images in data-page order.
    pages: Vec<Page>,
    /// Durable log position at dump time; restore replays from here.
    log_pos: Lsn,
}

impl Archive {
    /// Number of archived pages.
    #[must_use]
    pub fn pages(&self) -> u32 {
        self.pages.len() as u32
    }

    /// Log position the archive is consistent with.
    #[must_use]
    pub fn log_position(&self) -> Lsn {
        self.log_pos
    }
}

impl<D: BlockDevice> Engine<D> {
    /// Dump every data page into an archive (requires quiescence so the
    /// dump is transaction-consistent). Bills one read per page, like a
    /// full backup pass would.
    pub(crate) fn archive_dump(&mut self) -> Result<Archive> {
        self.require_quiesced()?;
        // Flush committed buffer contents first so the archive equals the
        // committed state without needing the log.
        for (page, _) in self.buffer.dirty_pages() {
            let data = self.buffer.peek(page).expect("dirty resident").clone();
            self.write_back_committed(page, &data)?;
            self.buffer.mark_clean(page);
        }
        let mut pages = Vec::with_capacity(self.dur.array.data_pages() as usize);
        for p in 0..self.dur.array.data_pages() {
            pages.push(self.read_disk(DataPageId(p))?);
        }
        self.log.force();
        Ok(Archive {
            pages,
            log_pos: Lsn(self.dur.log_store.len()),
        })
    }

    /// Restore the database from an archive and roll it forward from the
    /// redo log — the §1 baseline whose cost motivates the paper. Bills a
    /// full-database rewrite (full-stripe writes recompute parity as they
    /// go) plus the log replay.
    ///
    /// Returns the number of redo records applied.
    pub(crate) fn archive_restore(&mut self, archive: &Archive) -> Result<u64> {
        self.require_quiesced()?;
        if archive.pages() != self.dur.array.data_pages() {
            return Err(DbError::WrongGranularity(
                "archive shape does not match the database",
            ));
        }
        self.buffer.crash(); // cached pages are about to be stale

        // Rewrite every group full-stripe; parity is recomputed, so this
        // also heals any failed-and-replaced disks.
        let slots: Vec<ParitySlot> = if self.is_rda() {
            vec![ParitySlot::P0, ParitySlot::P1]
        } else {
            vec![ParitySlot::P0]
        };
        let now = self.clock + 1;
        self.clock = now;
        for g in 0..self.dur.array.groups() {
            let g = GroupId(g);
            let members = self.dur.array.geometry().members(g);
            let images: Vec<Page> = members
                .iter()
                .map(|m| archive.pages[m.0 as usize].clone())
                .collect();
            self.dur.array.full_group_write(g, &images, &slots)?;
            if self.is_rda() {
                self.dur.twins.set_committed(g, ParitySlot::P0, now);
            }
        }

        // Roll forward committed work logged after the dump.
        let records = self
            .dur
            .log_store
            .read_range(archive.log_pos, Lsn(self.dur.log_store.len()));
        let analysis = Analysis::run(&records);
        let winners: BTreeSet<_> = analysis.winners().into_iter().collect();
        let mut applied = 0u64;
        for (_, record) in &records {
            match record {
                LogRecord::AfterImage { txn, page, image } if winners.contains(txn) => {
                    let new = Page::from_bytes(image);
                    let old = self.read_disk(*page)?;
                    if old != new {
                        let g = self.dur.array.geometry().group_of(*page);
                        let slots = if self.is_rda() {
                            vec![self.dur.twins.current_slot(g)]
                        } else {
                            vec![ParitySlot::P0]
                        };
                        self.write_with_parity(*page, &new, &old, &slots)?;
                        applied += 1;
                    }
                }
                LogRecord::RecordRedo {
                    txn,
                    page,
                    offset,
                    after,
                }
                | LogRecord::RecordUpdate {
                    txn,
                    page,
                    offset,
                    after,
                    ..
                } if winners.contains(txn) => {
                    let old = self.read_disk(*page)?;
                    let mut new = old.clone();
                    let off = *offset as usize;
                    new.as_mut()[off..off + after.len()].copy_from_slice(after);
                    if new != old {
                        let g = self.dur.array.geometry().group_of(*page);
                        let slots = if self.is_rda() {
                            vec![self.dur.twins.current_slot(g)]
                        } else {
                            vec![ParitySlot::P0]
                        };
                        self.write_with_parity(*page, &new, &old, &slots)?;
                        applied += 1;
                    }
                }
                _ => {}
            }
        }
        Ok(applied)
    }

    fn require_quiesced(&self) -> Result<()> {
        if self.needs_recovery {
            return Err(DbError::NeedsRecovery);
        }
        if !self.active.is_empty() {
            return Err(DbError::ActiveTransactions(self.active.len()));
        }
        Ok(())
    }
}
