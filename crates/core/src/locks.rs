//! Write-lock table.
//!
//! The paper relies on the concurrency-control layer to keep concurrent
//! update sets disjoint: page locking under page logging (footnote 8:
//! "the use of page locking implies that the sets of pages modified by
//! concurrent update transactions are disjoint") and record locking under
//! record logging (footnote 12: "Update transactions can share pages
//! because record locking is used"). This module provides exactly that —
//! exclusive page locks, or exclusive byte-range locks — with a
//! fail-fast (no blocking) discipline: a conflict is returned to the
//! caller, which retries or serializes.
//!
//! Page-level shared (read) locks are available for the engine's optional
//! strict-2PL mode (`DbConfig::strict_read_locks`); they change isolation,
//! not a single transfer count, and default to off because the paper's
//! model evaluates recovery I/O, not anomalies.

use crate::error::{DbError, Result};
use rda_array::DataPageId;
use rda_wal::TxnId;
use std::collections::HashMap;

/// Write-lock table at page or byte-range granularity, with optional
/// page-level shared (read) locks for a strict-2PL mode.
#[derive(Debug, Default)]
pub struct LockTable {
    /// Whole-page exclusive locks.
    pages: HashMap<DataPageId, TxnId>,
    /// Byte-range exclusive locks per page.
    ranges: HashMap<DataPageId, Vec<(u32, u32, TxnId)>>,
    /// Page-level shared locks (strict-2PL reads).
    shared: HashMap<DataPageId, std::collections::BTreeSet<TxnId>>,
}

impl LockTable {
    /// Empty table.
    #[must_use]
    pub fn new() -> LockTable {
        LockTable::default()
    }

    /// Acquire (or re-acquire) an exclusive page lock for `txn`.
    ///
    /// # Errors
    /// [`DbError::LockConflict`] if another transaction holds the page or
    /// any byte range on it.
    pub fn lock_page(&mut self, page: DataPageId, txn: TxnId) -> Result<()> {
        if let Some(&holder) = self.pages.get(&page) {
            if holder != txn {
                return Err(DbError::LockConflict { page, holder });
            }
            return Ok(());
        }
        if let Some(ranges) = self.ranges.get(&page) {
            if let Some(&(_, _, holder)) = ranges.iter().find(|(_, _, h)| *h != txn) {
                return Err(DbError::LockConflict { page, holder });
            }
        }
        // Shared holders other than the upgrader block the exclusive lock.
        if let Some(readers) = self.shared.get_mut(&page) {
            if let Some(&holder) = readers.iter().find(|&&t| t != txn) {
                return Err(DbError::LockConflict { page, holder });
            }
            // Upgrade: the S entry is subsumed by the X lock; leaving it
            // behind would make the table report a phantom reader.
            readers.remove(&txn);
            if readers.is_empty() {
                self.shared.remove(&page);
            }
        }
        self.pages.insert(page, txn);
        Ok(())
    }

    /// Acquire (or re-acquire) a page-level shared lock for `txn`
    /// (strict-2PL reads). Compatible with other shared holders and with
    /// the holder's own exclusive locks.
    ///
    /// # Errors
    /// [`DbError::LockConflict`] if another transaction holds the page or
    /// a byte range on it exclusively.
    pub fn lock_shared(&mut self, page: DataPageId, txn: TxnId) -> Result<()> {
        if let Some(&holder) = self.pages.get(&page) {
            if holder != txn {
                return Err(DbError::LockConflict { page, holder });
            }
            return Ok(()); // own X lock subsumes S
        }
        if let Some(ranges) = self.ranges.get(&page) {
            if let Some(&(_, _, holder)) = ranges.iter().find(|(_, _, h)| *h != txn) {
                return Err(DbError::LockConflict { page, holder });
            }
        }
        self.shared.entry(page).or_default().insert(txn);
        Ok(())
    }

    /// Acquire an exclusive lock on `offset..offset+len` of `page`.
    ///
    /// # Errors
    /// [`DbError::LockConflict`] on overlap with another transaction's
    /// range, or if another transaction holds the whole page.
    pub fn lock_range(
        &mut self,
        page: DataPageId,
        offset: u32,
        len: u32,
        txn: TxnId,
    ) -> Result<()> {
        if let Some(&holder) = self.pages.get(&page) {
            if holder != txn {
                return Err(DbError::LockConflict { page, holder });
            }
            // Holding the whole page subsumes the range.
            return Ok(());
        }
        if let Some(readers) = self.shared.get(&page) {
            if let Some(&holder) = readers.iter().find(|&&t| t != txn) {
                return Err(DbError::LockConflict { page, holder });
            }
        }
        let ranges = self.ranges.entry(page).or_default();
        // Widen to u64 so ranges touching the top of the u32 address space
        // cannot overflow into a false non-overlap.
        let end = u64::from(offset) + u64::from(len);
        if let Some(&(_, _, holder)) = ranges.iter().find(|(o, l, h)| {
            *h != txn && u64::from(offset) < u64::from(*o) + u64::from(*l) && u64::from(*o) < end
        }) {
            return Err(DbError::LockConflict { page, holder });
        }
        ranges.push((offset, len, txn));
        Ok(())
    }

    /// Do two or more distinct transactions hold locks on `page`? (Used to
    /// decide whether a stolen page may ride the parity: a page shared by
    /// several in-flight record-level writers cannot, because parity undo
    /// restores the whole page.)
    #[must_use]
    pub fn shared_by_multiple(&self, page: DataPageId) -> bool {
        if self.pages.contains_key(&page) {
            return false; // page lock ⇒ single owner
        }
        let Some(ranges) = self.ranges.get(&page) else {
            return false;
        };
        let mut owner = None;
        for &(_, _, t) in ranges {
            match owner {
                None => owner = Some(t),
                Some(o) if o != t => return true,
                Some(_) => {}
            }
        }
        false
    }

    /// Release everything held by `txn`.
    pub fn release_txn(&mut self, txn: TxnId) {
        self.pages.retain(|_, holder| *holder != txn);
        self.ranges.retain(|_, ranges| {
            ranges.retain(|(_, _, holder)| *holder != txn);
            !ranges.is_empty()
        });
        self.shared.retain(|_, readers| {
            readers.remove(&txn);
            !readers.is_empty()
        });
    }

    /// Every transaction holding any lock — exclusive page, byte range,
    /// or shared — in sorted order. The invariant auditor checks this set
    /// against the live-transaction table to find leaked entries.
    #[must_use]
    pub fn holder_txns(&self) -> std::collections::BTreeSet<TxnId> {
        let mut set: std::collections::BTreeSet<TxnId> = self.pages.values().copied().collect();
        for ranges in self.ranges.values() {
            set.extend(ranges.iter().map(|(_, _, t)| *t));
        }
        for readers in self.shared.values() {
            set.extend(readers.iter().copied());
        }
        set
    }

    /// Number of transactions holding any lock (diagnostic).
    #[must_use]
    pub fn holders(&self) -> usize {
        self.holder_txns().len()
    }

    /// Is the table completely empty (no exclusive, range, or shared
    /// entries)? True whenever no transaction is active.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty() && self.ranges.is_empty() && self.shared.is_empty()
    }

    /// Drop everything (crash).
    pub fn clear(&mut self) {
        self.pages.clear();
        self.ranges.clear();
        self.shared.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T1: TxnId = TxnId(1);
    const T2: TxnId = TxnId(2);
    const P: DataPageId = DataPageId(5);

    #[test]
    fn page_lock_excludes_other_txn() {
        let mut lt = LockTable::new();
        lt.lock_page(P, T1).unwrap();
        lt.lock_page(P, T1).unwrap(); // reentrant
        assert_eq!(
            lt.lock_page(P, T2).unwrap_err(),
            DbError::LockConflict {
                page: P,
                holder: T1
            }
        );
        lt.release_txn(T1);
        lt.lock_page(P, T2).unwrap();
    }

    #[test]
    fn disjoint_ranges_coexist() {
        let mut lt = LockTable::new();
        lt.lock_range(P, 0, 10, T1).unwrap();
        lt.lock_range(P, 10, 10, T2).unwrap();
        assert!(lt.shared_by_multiple(P));
    }

    #[test]
    fn overlapping_ranges_conflict() {
        let mut lt = LockTable::new();
        lt.lock_range(P, 0, 10, T1).unwrap();
        assert!(lt.lock_range(P, 5, 10, T2).is_err());
        // Same txn may overlap itself.
        lt.lock_range(P, 5, 10, T1).unwrap();
    }

    #[test]
    fn page_lock_conflicts_with_ranges() {
        let mut lt = LockTable::new();
        lt.lock_range(P, 0, 4, T1).unwrap();
        assert!(lt.lock_page(P, T2).is_err());
        lt.lock_page(P, T1).unwrap(); // own ranges do not block
                                      // Now a range request by T2 hits the page lock.
        assert!(lt.lock_range(P, 20, 4, T2).is_err());
    }

    #[test]
    fn shared_by_multiple_detects_single_owner() {
        let mut lt = LockTable::new();
        lt.lock_range(P, 0, 4, T1).unwrap();
        lt.lock_range(P, 8, 4, T1).unwrap();
        assert!(!lt.shared_by_multiple(P));
        lt.lock_page(DataPageId(9), T1).unwrap();
        assert!(!lt.shared_by_multiple(DataPageId(9)));
        assert!(!lt.shared_by_multiple(DataPageId(100)));
    }

    #[test]
    fn shared_locks_coexist_and_block_writers() {
        let mut lt = LockTable::new();
        lt.lock_shared(P, T1).unwrap();
        lt.lock_shared(P, T2).unwrap(); // readers coexist
        assert!(
            lt.lock_page(P, T1).is_err(),
            "upgrade blocked by other reader"
        );
        assert!(
            lt.lock_range(P, 0, 4, T2).is_err(),
            "range write blocked by reader"
        );
        lt.release_txn(T2);
        lt.lock_page(P, T1).unwrap(); // sole reader upgrades
        assert!(lt.lock_shared(P, T2).is_err(), "X lock blocks new readers");
        // Own X lock subsumes S.
        lt.lock_shared(P, T1).unwrap();
    }

    #[test]
    fn shared_lock_blocked_by_exclusive_range() {
        let mut lt = LockTable::new();
        lt.lock_range(P, 0, 8, T1).unwrap();
        assert!(lt.lock_shared(P, T2).is_err());
        lt.lock_shared(P, T1).unwrap(); // own range does not block
    }

    #[test]
    fn release_only_affects_one_txn() {
        let mut lt = LockTable::new();
        lt.lock_range(P, 0, 4, T1).unwrap();
        lt.lock_range(P, 8, 4, T2).unwrap();
        assert_eq!(lt.holders(), 2);
        lt.release_txn(T1);
        assert_eq!(lt.holders(), 1);
        lt.lock_range(P, 0, 4, T2).unwrap();
    }

    #[test]
    fn upgrade_consumes_the_shared_entry() {
        let mut lt = LockTable::new();
        lt.lock_shared(P, T1).unwrap();
        lt.lock_page(P, T1).unwrap(); // sole reader upgrades S → X
                                      // The stale S entry must be gone: exactly one holder, and releasing
                                      // the transaction leaves a truly empty table.
        assert_eq!(lt.holder_txns().into_iter().collect::<Vec<_>>(), vec![T1]);
        lt.release_txn(T1);
        assert!(lt.is_empty(), "upgrade left a phantom shared entry behind");
        // And a fresh exclusive is immediately grantable to someone else.
        lt.lock_page(P, T2).unwrap();
    }

    #[test]
    fn range_near_u32_max_does_not_overflow() {
        let mut lt = LockTable::new();
        lt.lock_range(P, u32::MAX - 4, 4, T1).unwrap();
        // Overlapping range by another txn must conflict, not wrap around.
        assert!(lt.lock_range(P, u32::MAX - 2, 2, T2).is_err());
        // A disjoint low range still coexists.
        lt.lock_range(P, 0, 8, T2).unwrap();
    }

    #[test]
    fn range_and_page_conflicts_overlap_both_ways() {
        let mut lt = LockTable::new();
        lt.lock_range(P, 16, 16, T1).unwrap();
        // Exact-boundary neighbours do not overlap.
        lt.lock_range(P, 0, 16, T2).unwrap();
        lt.lock_range(P, 32, 16, T2).unwrap();
        // One-byte intrusion at either edge conflicts.
        assert!(lt.lock_range(P, 15, 2, T2).is_err());
        assert!(lt.lock_range(P, 31, 2, T2).is_err());
        // Whole-page requests conflict with any foreign range, and ranges
        // conflict with a foreign page lock.
        assert!(lt.lock_page(P, T2).is_err());
        lt.lock_page(DataPageId(7), T1).unwrap();
        assert!(lt.lock_range(DataPageId(7), 0, 1, T2).is_err());
    }

    #[test]
    fn release_all_lock_kinds_empties_the_table() {
        // The abort path calls release_txn for everything a transaction
        // held; afterwards the table must be literally empty — a leaked
        // entry would block unrelated transactions forever.
        let mut lt = LockTable::new();
        lt.lock_page(DataPageId(1), T1).unwrap();
        lt.lock_range(DataPageId(2), 0, 8, T1).unwrap();
        lt.lock_shared(DataPageId(3), T1).unwrap();
        assert!(!lt.is_empty());
        lt.release_txn(T1);
        assert!(
            lt.is_empty(),
            "abort must drop page, range and shared locks"
        );
        assert_eq!(lt.holders(), 0);
    }

    #[test]
    fn clear_releases_everything() {
        let mut lt = LockTable::new();
        lt.lock_page(P, T1).unwrap();
        lt.clear();
        lt.lock_page(P, T2).unwrap();
    }
}
