//! Restart (crash) recovery and media recovery (paper §4.3).
//!
//! After a system failure the volatile state — buffer pool, Dirty_Set,
//! lock table, unforced log tail — is gone. Recovery proceeds:
//!
//! 1. **Analysis**: scan the durable log, classifying transactions into
//!    winners (durable Commit), already-aborted, and losers (BOT without
//!    EOT). Steal notes tell us which pages each loser propagated *without*
//!    UNDO logging (the paper finds these via the TWIST-style log chain).
//! 2. **Undo losers** — *before* redo, so the parity difference
//!    `P ⊕ P′` still reflects the on-disk state at crash time:
//!    parity-riding pages are restored via `D_old = (P ⊕ P′) ⊕ D_new`
//!    (pinning a compensation image in the log first, which makes a second
//!    crash during recovery harmless), logged pages via their
//!    before-images. Working twins of loser groups are invalidated.
//! 3. **Redo winners** (¬FORCE only) from the last ACC checkpoint: the
//!    buffer's unforced committed updates are reapplied from after-images
//!    (page logging) or after-diffs (record logging). Because undo restored
//!    first-touch before-images — which already contain every *earlier*
//!    committed update — redo-after-undo converges to the committed state.
//! 4. **Current_Parity bitmap reconstruction**: one parity-header read per
//!    group (the paper's `S/N` restart term).

use crate::config::{EotPolicy, LogGranularity};
use crate::engine::Engine;
use crate::error::{DbError, Result};
use rda_array::{BlockDevice, DataPageId, DiskId, GroupId, Page, ParitySlot};
use rda_obs::{EventKind, FlightRecord, RecoveryPhase, Timeline};
use rda_wal::{Analysis, LogRecord, Lsn, TxnId};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Instant;

/// What restart recovery did, for observability and tests.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Committed transactions seen in the durable log.
    pub winners: Vec<TxnId>,
    /// In-flight transactions rolled back.
    pub losers: Vec<TxnId>,
    /// Pages undone through the parity array.
    pub undone_via_parity: u64,
    /// Pages undone from logged before-images/diffs.
    pub undone_via_log: u64,
    /// Pages rewritten by redo.
    pub redone: u64,
    /// Parity groups whose Current_Parity bit was reconstructed.
    pub bitmap_groups: u64,
    /// Data pages whose Current_Parity coverage was validated by the
    /// bitmap scan — the whole database, since every group is scanned
    /// (equals the array's data-page count on the RDA engine).
    pub pages_scanned: u64,
    /// Staged write intents (controller NVRAM) replayed to finish an
    /// interrupted read-modify-write.
    pub intent_replays: u64,
    /// Parity twins found torn (half-written) and healed by recomputing
    /// the group parity from its members.
    pub torn_twins_healed: u64,
    /// Per-phase breakdown (wall-clock + billed array I/O counts).
    pub timeline: Timeline,
    /// The last pre-crash flight record (black-box snapshot) the backend
    /// recovered from `obs.journal`, when one survived. `None` on the
    /// simulated array and on backends without a flight recorder.
    pub flight: Option<FlightRecord>,
}

/// Equality deliberately ignores [`RecoveryReport::timeline`] and
/// [`RecoveryReport::flight`]: the timeline's wall-clock durations and
/// the flight record's pre-crash wall state are not deterministic, and
/// report equality is what replay-determinism tests compare.
impl PartialEq for RecoveryReport {
    fn eq(&self, other: &Self) -> bool {
        self.winners == other.winners
            && self.losers == other.losers
            && self.undone_via_parity == other.undone_via_parity
            && self.undone_via_log == other.undone_via_log
            && self.redone == other.redone
            && self.bitmap_groups == other.bitmap_groups
            && self.pages_scanned == other.pages_scanned
            && self.intent_replays == other.intent_replays
            && self.torn_twins_healed == other.torn_twins_healed
    }
}

impl Eq for RecoveryReport {}

impl<D: BlockDevice> Engine<D> {
    /// Simulate a system failure: all volatile state is lost. The array,
    /// the durable log, and the twin directory (parity page headers)
    /// survive.
    pub(crate) fn crash(&mut self) {
        self.log.crash();
        self.buffer.crash();
        self.dirty.clear();
        self.locks.clear();
        self.active.clear();
        self.needs_recovery = true;
        // The crash *is* the restart boundary in this model: an installed
        // fault hook holding a power-loss latch releases it here so the
        // recovery I/O that follows can reach the platters.
        self.dur.array.power_cycled();
    }

    /// Restart recovery. Idempotent: a crash in the middle of a previous
    /// recovery attempt is handled by simply running it again.
    pub(crate) fn recover(&mut self) -> Result<RecoveryReport> {
        let store = Arc::clone(&self.dur.log_store);
        let records = store.read_all(); // billed log reads
        let analysis = Analysis::run(&records);

        let mut report = RecoveryReport {
            winners: analysis.winners(),
            losers: analysis.losers(),
            // The black box's pre-crash snapshot rides the first report
            // after reopen (recovery is idempotent; reruns see `None`).
            flight: self.prior_flight.take(),
            ..RecoveryReport::default()
        };
        self.metrics.recoveries.inc();

        // Per-phase breakdown: billed array I/O from stats deltas (exact
        // and deterministic), wall-clock from `Instant` (human-facing
        // only — never part of report equality or deterministic JSON).
        let io = self.dur.array.stats();
        let mut phase_mark = io.snapshot();
        let mut phase_start = Instant::now();
        let mut close_phase = move |timeline: &mut Timeline, phase: RecoveryPhase| {
            let snap = io.snapshot();
            let d = snap.delta(&phase_mark);
            timeline.push(phase, phase_start.elapsed(), d.reads, d.writes);
            phase_mark = snap;
            phase_start = Instant::now();
        };

        // ---- 0. replay the staged write intent ------------------------
        // A pending intent means power failed inside a read-modify-write:
        // some of its data/parity writes may have landed, some not, and
        // one block may be torn. Replaying the whole staged set (absolute
        // page images, so the replay is idempotent — a second crash here
        // is harmless) finishes the sequence and heals any torn block.
        // The intent is cleared only *after* the replay completes.
        let staged = self.dur.intent.lock().clone();
        if let Some(intent) = staged {
            match self
                .dur
                .array
                .write_data_unprotected(intent.page, &intent.data)
            {
                Ok(()) | Err(rda_array::ArrayError::DiskFailed(_)) => {}
                Err(e) => return Err(e.into()),
            }
            for (g, slot, parity) in &intent.parity {
                match self.dur.array.write_parity(*g, *slot, parity) {
                    Ok(()) | Err(rda_array::ArrayError::DiskFailed(_)) => {}
                    Err(e) => return Err(e.into()),
                }
            }
            *self.dur.intent.lock() = None;
            if let Some(sink) = &self.dur.meta {
                // The journaled intent is consumed; a second restart must
                // not replay it over post-recovery writes.
                sink.intent_clear();
            }
            report.intent_replays += 1;
            self.obs.tracer.emit(|| EventKind::IntentReplay {
                page: intent.page.0,
            });
        }
        close_phase(&mut report.timeline, RecoveryPhase::IntentReplay);

        // ---- 1. heal torn non-committed twins -------------------------
        // A tear on the *working* twin (or an obsolete/invalid one) costs
        // nothing: every rider's before-image is derived through the
        // committed twin, which no riding write ever touches, so the torn
        // block's content is simply reset from it. Doing this up front
        // keeps the later undo/redo writes — which read-modify-write both
        // twins of a dirty group — from tripping over the torn block. A
        // torn *committed* twin of a clean group is healed by the bitmap
        // scan (phase 4); of a dirty group it is genuine double failure
        // and surfaces as an error from the undo reads.
        if self.is_rda() {
            for g in 0..self.dur.array.groups() {
                let g = GroupId(g);
                let meta = self.dur.twins.meta(g);
                let work = match meta.state {
                    [crate::twin::TwinState::Working, _] => Some(ParitySlot::P0),
                    [_, crate::twin::TwinState::Working] => Some(ParitySlot::P1),
                    _ => None,
                };
                let committed =
                    work.map_or_else(|| self.dur.twins.current_slot(g), ParitySlot::other);
                for slot in ParitySlot::BOTH {
                    if slot == committed {
                        continue;
                    }
                    if matches!(
                        self.dur.array.read_parity(g, slot),
                        Err(rda_array::ArrayError::TornPage { .. })
                    ) {
                        let p_comm = self.dur.array.read_parity(g, committed)?;
                        self.dur.array.write_parity(g, slot, &p_comm)?;
                        if work == Some(slot) {
                            self.dur.twins.invalidate(g, slot);
                        }
                        report.torn_twins_healed += 1;
                        self.obs
                            .tracer
                            .emit(|| EventKind::TornTwinHeal { group: g.0 });
                    }
                }
            }
        }

        // Groups that were dirty at crash time: every group containing a
        // loser's parity-riding page. Writes into these groups must keep
        // updating both twins until the undo completes.
        let mut loser_dirty_groups: BTreeSet<GroupId> = BTreeSet::new();
        let mut loser_parity_pages: BTreeMap<TxnId, BTreeSet<DataPageId>> = BTreeMap::new();
        for loser in &report.losers {
            let mut pages: BTreeSet<DataPageId> =
                self.dur.chain.pages_of(*loser).into_iter().collect();
            // Legacy: steal notes written to the log are honored too.
            if let Some(noted) = analysis.parity_steals.get(loser) {
                pages.extend(noted.iter().copied());
            }
            for page in &pages {
                loser_dirty_groups.insert(self.dur.array.geometry().group_of(*page));
            }
            loser_parity_pages.insert(*loser, pages);
        }

        // ---- 2. undo losers -------------------------------------------
        // Parity undo restores the *pre-steal disk version* of a page,
        // which may predate committed-but-unflushed updates (¬FORCE); those
        // pages must be redone from the whole log, not just from the last
        // checkpoint.
        // A page is "regressed" if it has *ever* been parity-undone since
        // the last flush of its committed state — every parity undo (crash
        // or normal abort) leaves a Compensation record, so the log tells
        // us. Over-inclusion only costs a few extra redo reads.
        let mut regressed: BTreeSet<DataPageId> = analysis
            .compensations
            .keys()
            .map(|(_, page)| *page)
            .collect();
        for loser in &report.losers {
            let pages = loser_parity_pages.get(loser).cloned().unwrap_or_default();
            for page in pages {
                self.recover_undo_parity(*loser, page, &analysis)?;
                self.dur.chain.clear_page(*loser, page);
                report.undone_via_parity += 1;
                regressed.insert(page);
            }
        }
        close_phase(&mut report.timeline, RecoveryPhase::UndoParity);
        for loser in &report.losers {
            let logged: Vec<DataPageId> = analysis
                .logged_undo
                .get(loser)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            for page in logged {
                self.recover_undo_logged(*loser, page, &records, &loser_dirty_groups)?;
                report.undone_via_log += 1;
            }
        }
        close_phase(&mut report.timeline, RecoveryPhase::UndoLog);

        // ---- 3. redo winners (¬FORCE) -----------------------------------
        if self.cfg.eot == EotPolicy::NoForce {
            report.redone =
                self.recover_redo(&analysis, &records, &loser_dirty_groups, &regressed)?;
        }
        close_phase(&mut report.timeline, RecoveryPhase::Redo);

        // ---- 4. rebuild the Current_Parity bitmap ------------------------
        if self.is_rda() {
            for g in 0..self.dur.array.groups() {
                let g = GroupId(g);
                // One header read per group (the paper's S/N term).
                let slot = self.dur.twins.current_slot(g);
                match self.dur.array.read_parity(g, slot) {
                    Ok(_) => {}
                    Err(rda_array::ArrayError::TornPage { .. }) => {
                        // A torn current twin (e.g. a seeded tear, or one
                        // outside any staged intent): by this point every
                        // loser group has been undone, so the group is
                        // clean and its parity is simply the member XOR.
                        let fixed = self.dur.array.compute_group_parity(g)?;
                        self.dur.array.write_parity(g, slot, &fixed)?;
                        report.torn_twins_healed += 1;
                        self.obs
                            .tracer
                            .emit(|| EventKind::TornTwinHeal { group: g.0 });
                    }
                    Err(e) => return Err(e.into()),
                }
                report.bitmap_groups += 1;
                // One readable header vouches for the parity coverage of
                // every data page in the group.
                report.pages_scanned += self.dur.array.geometry().members(g).len() as u64;
            }
        }
        close_phase(&mut report.timeline, RecoveryPhase::BitmapScan);

        // ---- finish -------------------------------------------------------
        // Sweep stale chains. Losers' entries were cleared page by page as
        // their undos completed; anything left belongs to a transaction
        // whose outcome record became durable but whose EOT chain reset did
        // not — a window that only exists on real storage, where the
        // process can die between the log force and the header reclamation.
        // No transaction is alive at this point, so every survivor is dead.
        for txn in self.dur.chain.txns() {
            self.dur.chain.clear_txn(txn);
        }
        for loser in &report.losers {
            self.log.append(LogRecord::Abort { txn: *loser });
        }
        // Recovery is idempotent, but once the losers' Abort records are
        // durable a later restart will not revisit them — so the repair
        // writes they summarize must be on stable storage first.
        self.dur.array.write_barrier()?;
        self.log.force();

        let max_txn = analysis.outcomes.keys().map(|t| t.0).max().unwrap_or(0);
        self.next_txn = self.next_txn.max(max_txn + 1);
        self.clock = self.dur.twins.max_ts() + 1;
        self.ops_since_ckpt = 0;
        self.needs_recovery = false;
        Ok(report)
    }

    /// Undo one parity-riding page of a loser during restart.
    fn recover_undo_parity(
        &mut self,
        loser: TxnId,
        page: DataPageId,
        analysis: &Analysis,
    ) -> Result<()> {
        let g = self.dur.array.geometry().group_of(page);

        // A compensation image means a pre-crash rollback (or an earlier
        // recovery attempt) already computed the before-image; the parity
        // difference may no longer encode it, so apply the pinned image.
        if let Some(image) = analysis.compensations.get(&(loser, page)) {
            let restored = Page::from_bytes(image);
            self.dur.array.write_data_unprotected(page, &restored)?;
            self.invalidate_working_twin(g)?;
        } else {
            self.recover_undo_parity_via_twin(loser, page, g)?;
        }
        self.metrics.undo_parity.inc();
        self.obs.tracer.emit(|| EventKind::ParityUndo {
            group: g.0,
            page: page.0,
            txn: loser.0,
        });
        Ok(())
    }

    /// The twin-difference half of [`Engine::recover_undo_parity`]: no
    /// pinned compensation image exists yet, so derive `D_old` from the
    /// committed twin and pin it before restoring.
    fn recover_undo_parity_via_twin(
        &mut self,
        loser: TxnId,
        page: DataPageId,
        g: GroupId,
    ) -> Result<()> {
        // The working twin is identified durably by its Figure-8 state.
        // `None` means the crash hit the steal before its parity write
        // landed (the chain note rides the data write, so it can exist a
        // beat earlier) — the data page may hold the new image, a torn
        // image, or still the old one.
        let meta = self.dur.twins.meta(g);
        let work = match meta.state {
            [crate::twin::TwinState::Working, _] => Some(ParitySlot::P0),
            [_, crate::twin::TwinState::Working] => Some(ParitySlot::P1),
            _ => None,
        };
        let committed = match work {
            Some(w) => w.other(),
            None => self.dur.twins.current_slot(g),
        };

        // D_old through the committed twin: P_committed ⊕ XOR(siblings).
        // Unlike the twin-difference identity `(P ⊕ P′) ⊕ D_new`, this
        // holds at *every* crash point of the steal sequence — the
        // committed parity and the sibling pages are exactly what no
        // riding write ever touches — and it never needs to read the
        // riding page itself, so a torn data page or a torn working twin
        // costs nothing. The identity is kept as the degraded-mode
        // fallback: it still works with a dead sibling disk, where
        // reconstruction cannot.
        let d_old = match self.dur.array.reconstruct_data(page, committed) {
            Ok(p) => p,
            Err(
                e @ (rda_array::ArrayError::DiskFailed(_)
                | rda_array::ArrayError::MediaError { .. }
                | rda_array::ArrayError::Unrecoverable(_)),
            ) => {
                let Some(work) = work else {
                    return Err(e.into());
                };
                let p_work = self.dur.array.read_parity(g, work)?;
                let p_comm = self.dur.array.read_parity(g, committed)?;
                let d_new = self.read_disk(page)?;
                // Fold into the already-owned working twin page:
                // D_old = P_work ⊕ P_committed ⊕ D_new.
                let mut d_old = p_work;
                d_old.xor_many_in_place(&[&p_comm, &d_new]);
                d_old
            }
            Err(e) => return Err(e.into()),
        };

        self.log.append(LogRecord::Compensation {
            txn: loser,
            page,
            image: d_old.as_ref().to_vec(),
        });
        self.log.force();

        self.dur.array.write_data_unprotected(page, &d_old)?;
        if let Some(work) = work {
            let p_comm = self.dur.array.read_parity(g, committed)?;
            self.dur.array.write_parity(g, work, &p_comm)?;
            self.dur.twins.invalidate(g, work);
        }
        Ok(())
    }

    /// Reset a group's working twin (content := committed parity, header
    /// invalidated). Idempotent.
    fn invalidate_working_twin(&mut self, g: GroupId) -> Result<()> {
        let meta = self.dur.twins.meta(g);
        let work = match meta.state {
            [crate::twin::TwinState::Working, _] => ParitySlot::P0,
            [_, crate::twin::TwinState::Working] => ParitySlot::P1,
            _ => return Ok(()),
        };
        let p_comm = self.dur.array.read_parity(g, work.other())?;
        self.dur.array.write_parity(g, work, &p_comm)?;
        self.dur.twins.invalidate(g, work);
        Ok(())
    }

    /// Undo one UNDO-logged page of a loser during restart.
    fn recover_undo_logged(
        &mut self,
        loser: TxnId,
        page: DataPageId,
        records: &[(Lsn, LogRecord)],
        loser_dirty_groups: &BTreeSet<GroupId>,
    ) -> Result<()> {
        let g = self.dur.array.geometry().group_of(page);
        let restored = match self.cfg.granularity {
            LogGranularity::Page => {
                // The earliest before-image is the transaction's
                // first-touch state.
                let image = records
                    .iter()
                    .find_map(|(_, r)| match r {
                        LogRecord::BeforeImage {
                            txn,
                            page: p,
                            image,
                        } if *txn == loser && *p == page => Some(image),
                        _ => None,
                    })
                    .expect("logged-undo page has a before-image");
                Page::from_bytes(image)
            }
            LogGranularity::Record => {
                let mut current = self.read_disk(page)?;
                let diffs: Vec<(u32, &Vec<u8>)> = records
                    .iter()
                    .filter_map(|(_, r)| match r {
                        LogRecord::RecordUpdate {
                            txn,
                            page: p,
                            offset,
                            before,
                            ..
                        } if *txn == loser && *p == page => Some((*offset, before)),
                        _ => None,
                    })
                    .collect();
                for (offset, before) in diffs.iter().rev() {
                    let off = *offset as usize;
                    current.as_mut()[off..off + before.len()].copy_from_slice(before);
                }
                current
            }
        };
        let old = self.read_disk(page)?;
        if restored == old {
            return Ok(()); // already undone by an earlier recovery attempt
        }
        let slots = self.recovery_write_slots(g, loser_dirty_groups);
        self.write_with_parity(page, &restored, &old, &slots)?;
        self.metrics.undo_log.inc();
        self.obs.tracer.emit(|| EventKind::LogUndo {
            page: page.0,
            txn: loser.0,
        });
        Ok(())
    }

    /// Which twins recovery writes must update: both for groups that were
    /// dirty at crash time (their twins must keep their XOR difference
    /// until the parity undo runs; afterwards they are identical, so the
    /// double update is harmless), the current one otherwise.
    fn recovery_write_slots(
        &self,
        g: GroupId,
        loser_dirty_groups: &BTreeSet<GroupId>,
    ) -> Vec<ParitySlot> {
        if !self.is_rda() {
            return vec![ParitySlot::P0];
        }
        if loser_dirty_groups.contains(&g) {
            vec![ParitySlot::P0, ParitySlot::P1]
        } else {
            vec![self.dur.twins.current_slot(g)]
        }
    }

    /// Redo committed work from the last ACC checkpoint (¬FORCE).
    fn recover_redo(
        &mut self,
        analysis: &Analysis,
        records: &[(Lsn, LogRecord)],
        loser_dirty_groups: &BTreeSet<GroupId>,
        regressed: &BTreeSet<DataPageId>,
    ) -> Result<u64> {
        let winners: BTreeSet<TxnId> = analysis.winners().into_iter().collect();
        let start = analysis
            .last_acc_checkpoint
            .as_ref()
            .map_or(Lsn(0), |(l, _)| *l);
        // Pages regressed by parity undo need whole-log redo.
        let in_scope = |lsn: Lsn, page: DataPageId| lsn >= start || regressed.contains(&page);

        let mut redone = 0;
        match self.cfg.granularity {
            LogGranularity::Page => {
                // Last committed after-image per page wins.
                let mut latest: BTreeMap<DataPageId, &Vec<u8>> = BTreeMap::new();
                for (lsn, record) in records {
                    if let LogRecord::AfterImage { txn, page, image } = record {
                        if winners.contains(txn) && in_scope(*lsn, *page) {
                            latest.insert(*page, image);
                        }
                    }
                }
                for (page, image) in latest {
                    let image = Page::from_bytes(image);
                    let current = self.read_disk(page)?;
                    if current == image {
                        continue;
                    }
                    let g = self.dur.array.geometry().group_of(page);
                    let slots = self.recovery_write_slots(g, loser_dirty_groups);
                    self.write_with_parity(page, &image, &current, &slots)?;
                    redone += 1;
                }
            }
            LogGranularity::Record => {
                // Apply every committed after-diff in log order, page by
                // page.
                let mut diffs: BTreeMap<DataPageId, Vec<(u32, &Vec<u8>)>> = BTreeMap::new();
                for (lsn, record) in records {
                    match record {
                        LogRecord::RecordRedo {
                            txn,
                            page,
                            offset,
                            after,
                        }
                        | LogRecord::RecordUpdate {
                            txn,
                            page,
                            offset,
                            after,
                            ..
                        } if winners.contains(txn) && in_scope(*lsn, *page) => {
                            diffs.entry(*page).or_default().push((*offset, after));
                        }
                        _ => {}
                    }
                }
                for (page, ops) in diffs {
                    let current = self.read_disk(page)?;
                    let mut new = current.clone();
                    for (offset, after) in ops {
                        let off = offset as usize;
                        new.as_mut()[off..off + after.len()].copy_from_slice(after);
                    }
                    if new == current {
                        continue;
                    }
                    let g = self.dur.array.geometry().group_of(page);
                    let slots = self.recovery_write_slots(g, loser_dirty_groups);
                    self.write_with_parity(page, &new, &current, &slots)?;
                    redone += 1;
                }
            }
        }
        Ok(redone)
    }

    /// Media recovery: replace a failed disk and rebuild its contents from
    /// the surviving members of each parity group, reading through the
    /// committed twin — the paper's §1 goal of recovering "without
    /// requiring operator intervention". Requires that no transactions are
    /// active so that every group is clean.
    /// When a disk dies together with a system crash, restart recovery
    /// runs *first*, degraded: a rebuild with losers still riding parity
    /// would materialize stale parity into data blocks, while the parity
    /// undo reads nothing a rider ever touched and so works without the
    /// dead disk. Rebuild afterwards — or mid-restart when recovery must
    /// actually *write* the dead disk (it surfaces `DiskFailed`; by then
    /// undo has passed the staleness, so rebuild-then-retry is safe).
    pub(crate) fn media_recover(&mut self, disk: DiskId) -> Result<u64> {
        if !self.active.is_empty() {
            return Err(DbError::ActiveTransactions(self.active.len()));
        }
        let twins = Arc::clone(&self.dur.twins);
        let rebuilt = if self.is_rda() {
            self.dur
                .array
                .rebuild_disk(disk, |g| twins.current_slot(g))?
        } else {
            self.dur.array.rebuild_disk(disk, |_| ParitySlot::P0)?
        };
        // With the disk back, flush committed dirty buffer pages so the
        // rebuilt array reflects them (their redo is also in the log, but
        // a rebuild should not depend on a later restart).
        for (page, has_uncommitted) in self.buffer.dirty_pages() {
            debug_assert!(!has_uncommitted, "no active transactions");
            let data = self.buffer.peek(page).expect("dirty page resident").clone();
            self.write_back_committed(page, &data)?;
            self.buffer.mark_clean(page);
        }
        Ok(rebuilt)
    }

    /// Truncate the write-ahead log to the earliest record still needed:
    /// the later of the last checkpoint (¬FORCE redo starts there; under
    /// FORCE every commit is a TOC checkpoint, so the durable end works)
    /// bounded below by the earliest BOT of any active transaction (undo
    /// must reach it). Returns the number of records discarded.
    ///
    /// Archives taken before the truncation point can no longer be rolled
    /// forward — take a fresh archive after truncating if archive recovery
    /// matters.
    pub(crate) fn truncate_log(&mut self) -> Result<u64> {
        if self.needs_recovery {
            return Err(DbError::NeedsRecovery);
        }
        self.log.force();
        let store = Arc::clone(&self.dur.log_store);
        let mut cut = match self.cfg.eot {
            EotPolicy::Force => Lsn(store.len()),
            EotPolicy::NoForce => store
                .rfind(|r| {
                    matches!(
                        r,
                        LogRecord::Checkpoint {
                            kind: rda_wal::CheckpointKind::Acc,
                            ..
                        }
                    )
                })
                .unwrap_or(Lsn(store.base())),
        };
        for txn in self.active.keys() {
            if let Some(bot) = store.find_bot(*txn) {
                cut = cut.min(bot);
            }
        }
        Ok(store.truncate_before(cut))
    }

    /// Check the parity invariants of every group: the committed twin (or
    /// the working twin for dirty groups) must equal the XOR of the
    /// group's data pages. Returns human-readable violations (empty =
    /// consistent). Bills array reads like any scrubber would.
    pub(crate) fn verify_parity(&mut self) -> Result<Vec<String>> {
        let mut violations = Vec::new();
        for g in 0..self.dur.array.groups() {
            let g = GroupId(g);
            let slot = self.disk_read_slot(g);
            if self.is_rda() || slot == ParitySlot::P0 {
                let ok = self.dur.array.group_parity_ok(g, slot)?;
                if !ok {
                    violations.push(format!("group {g}: parity slot {slot:?} stale"));
                }
            }
            // For dirty RDA groups additionally check the committed twin
            // against the group with the riding page's old contents — the
            // undo identity itself.
            if let Some(info) = self.dirty.get(g) {
                let p_work = self.dur.array.read_parity(g, info.working)?;
                let p_comm = self.dur.array.read_parity(g, info.working.other())?;
                let d_new = self.read_disk(info.page)?;
                let mut d_old = p_comm;
                d_old.xor_many_in_place(&[&p_work, &d_new]);
                // The before-image must differ from the new one only if
                // the transaction actually changed the page; we can at
                // least check sizes and that recomputing parity from
                // members matches the working twin.
                let computed = self.dur.array.compute_group_parity(g)?;
                if computed != p_work {
                    violations.push(format!("group {g}: working twin does not cover disk"));
                }
                let _ = d_old;
            }
        }
        Ok(violations)
    }
}
