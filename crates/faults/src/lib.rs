//! `rda-faults`: deterministic fault injection and crashpoint
//! exploration for the recovery stack.
//!
//! The paper's central claim (§4.3) is that twin-copy parity recovery
//! restores a transaction-consistent database from an arbitrary system
//! failure, using the redundant disk array itself as the UNDO log. A
//! claim like that is only as strong as the set of failure points it has
//! been tested against — so this crate makes failure points enumerable:
//!
//! * [`FaultPlan`] / [`FaultSpec`] — declarative plans naming what goes
//!   wrong (torn write, transient error, latent sector error, disk
//!   death, power loss) and when (the k-th global I/O, or a specific
//!   physical block);
//! * [`FaultInjector`] — a deterministic
//!   [`FaultHook`](rda_array::FaultHook) that evaluates a plan against
//!   the array's physical I/O stream and latches after a crash until the
//!   restart boundary;
//! * [`explore`] — the crashpoint explorer: measures a workload trace's
//!   I/O count with a golden run, then replays it once per crashpoint
//!   (exhaustively under a bound, seeded-sampled above it), crashes,
//!   recovers, and verifies each survivor against the invariant auditor,
//!   the parity scrub, and an exact durability oracle;
//! * [`CrashpointReport::to_json`] — a flat JSON artifact for CI.
//!
//! Everything here is deterministic by construction: same config, same
//! trace, same seed ⇒ same I/O sequence, same crashpoints, same verdict.

mod explorer;
mod injector;
mod plan;
mod report;

pub use explorer::{
    crashpoint_schedule, explore, value_byte, Crashpoint, CrashpointReport, ExploreMode,
    ExplorerConfig, WorkerTiming,
};
pub use injector::{FaultInjector, FiredFault};
pub use plan::{FaultKind, FaultPlan, FaultSpec};
