//! Declarative fault plans.
//!
//! A [`FaultPlan`] is a list of [`FaultSpec`]s, each naming *what* goes
//! wrong ([`FaultKind`]) and *when* ([`FaultSpec::at_io`], a 1-based index
//! into the global sequence of physical I/Os) or *where*
//! ([`FaultSpec::disk`] / [`FaultSpec::block`]). Plans are pure data: the
//! [`FaultInjector`](crate::FaultInjector) evaluates them against the I/O
//! stream, which keeps every run a deterministic function of
//! (workload, plan) — the property crashpoint exploration depends on.

use rda_array::{FaultAction, IoEvent};

/// The fault modes a recovery protocol must survive, in roughly
/// increasing order of violence. Each maps onto one non-trivial
/// [`FaultAction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Controller reports an error but a retry succeeds (cabling glitch,
    /// command timeout). The platter is untouched.
    Transient,
    /// Latent sector error: the I/O appears to succeed, but the sector
    /// silently rots and is unreadable until rewritten. The classic
    /// double-failure seed the scrubber exists to weed out.
    Latent,
    /// The whole drive drops off the bus; every access to it fails until
    /// the disk is replaced and rebuilt.
    FailDisk,
    /// Power fails mid-write: a half-old / half-new page image is left on
    /// the platter and the machine stops (acts as [`FaultKind::Crash`]
    /// when the targeted I/O is a read).
    TornWrite,
    /// Power fails before the I/O touches the platter; nothing else
    /// happens until the machine is power-cycled.
    Crash,
}

impl FaultKind {
    /// The disk-level action this kind orders.
    #[must_use]
    pub fn action(self) -> FaultAction {
        match self {
            FaultKind::Transient => FaultAction::Transient,
            FaultKind::Latent => FaultAction::Latent,
            FaultKind::FailDisk => FaultAction::FailDisk,
            FaultKind::TornWrite => FaultAction::TornWrite,
            FaultKind::Crash => FaultAction::Crash,
        }
    }

    /// Does this kind stop the machine (so the injector must latch and
    /// refuse all further I/O until a power cycle)?
    #[must_use]
    pub fn stops_machine(self) -> bool {
        matches!(self, FaultKind::TornWrite | FaultKind::Crash)
    }

    /// Stable lower-case name, used in JSON reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Transient => "transient",
            FaultKind::Latent => "latent",
            FaultKind::FailDisk => "fail_disk",
            FaultKind::TornWrite => "torn_write",
            FaultKind::Crash => "crash",
        }
    }
}

/// One planned fault: a kind plus the conditions under which it fires.
/// All set conditions must match; each spec fires at most once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// What goes wrong.
    pub kind: FaultKind,
    /// Fire on exactly the k-th physical I/O (1-based, counted across all
    /// disks). `None` means any index.
    pub at_io: Option<u64>,
    /// Restrict to one disk.
    pub disk: Option<u16>,
    /// Restrict to one block index within the disk.
    pub block: Option<u64>,
    /// Restrict to writes (`TornWrite` on a read degenerates to a plain
    /// crash, so targeted torn-write plans usually set this).
    pub writes_only: bool,
}

impl FaultSpec {
    /// A spec of `kind` with no conditions (fires on the first I/O).
    #[must_use]
    pub fn new(kind: FaultKind) -> FaultSpec {
        FaultSpec {
            kind,
            at_io: None,
            disk: None,
            block: None,
            writes_only: false,
        }
    }

    /// A spec of `kind` firing on the k-th global I/O (1-based).
    #[must_use]
    pub fn at_io(kind: FaultKind, k: u64) -> FaultSpec {
        FaultSpec {
            at_io: Some(k),
            ..FaultSpec::new(kind)
        }
    }

    /// A spec of `kind` firing on the next access to `(disk, block)`.
    #[must_use]
    pub fn on_block(kind: FaultKind, disk: u16, block: u64) -> FaultSpec {
        FaultSpec {
            disk: Some(disk),
            block: Some(block),
            ..FaultSpec::new(kind)
        }
    }

    /// Builder: restrict this spec to write I/Os.
    #[must_use]
    pub fn writes_only(mut self) -> FaultSpec {
        self.writes_only = true;
        self
    }

    /// Builder: restrict this spec to one disk.
    #[must_use]
    pub fn on_disk(mut self, disk: u16) -> FaultSpec {
        self.disk = Some(disk);
        self
    }

    /// Would this spec fire on I/O number `k` described by `ev`?
    #[must_use]
    pub fn matches(&self, k: u64, ev: &IoEvent) -> bool {
        if self.writes_only && !ev.is_write {
            return false;
        }
        if self.at_io.is_some_and(|want| want != k) {
            return false;
        }
        if self.disk.is_some_and(|want| want != ev.disk.0) {
            return false;
        }
        if self.block.is_some_and(|want| want != ev.block) {
            return false;
        }
        true
    }
}

/// An ordered list of [`FaultSpec`]s. On each I/O the injector fires the
/// first not-yet-fired spec that matches; at most one spec fires per I/O.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// The planned faults, in priority order.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (every I/O proceeds; useful for pure I/O counting).
    #[must_use]
    pub fn empty() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan with a single spec.
    #[must_use]
    pub fn single(spec: FaultSpec) -> FaultPlan {
        FaultPlan { specs: vec![spec] }
    }

    /// Builder: append another spec.
    #[must_use]
    pub fn and(mut self, spec: FaultSpec) -> FaultPlan {
        self.specs.push(spec);
        self
    }

    /// Convenience: crash at the k-th global I/O.
    #[must_use]
    pub fn crash_at(k: u64) -> FaultPlan {
        FaultPlan::single(FaultSpec::at_io(FaultKind::Crash, k))
    }

    /// Convenience: torn write at the k-th global I/O.
    #[must_use]
    pub fn torn_write_at(k: u64) -> FaultPlan {
        FaultPlan::single(FaultSpec::at_io(FaultKind::TornWrite, k))
    }

    /// Convenience: whole-disk failure at the k-th global I/O (the disk
    /// that I/O happens to address).
    #[must_use]
    pub fn fail_disk_at(k: u64) -> FaultPlan {
        FaultPlan::single(FaultSpec::at_io(FaultKind::FailDisk, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rda_array::DiskId;

    fn ev(disk: u16, block: u64, is_write: bool) -> IoEvent {
        IoEvent {
            disk: DiskId(disk),
            block,
            is_write,
        }
    }

    #[test]
    fn at_io_matches_only_that_index() {
        let spec = FaultSpec::at_io(FaultKind::Crash, 7);
        assert!(spec.matches(7, &ev(0, 0, true)));
        assert!(!spec.matches(6, &ev(0, 0, true)));
        assert!(!spec.matches(8, &ev(0, 0, false)));
    }

    #[test]
    fn block_targeting_and_writes_only() {
        let spec = FaultSpec::on_block(FaultKind::TornWrite, 2, 5).writes_only();
        assert!(spec.matches(1, &ev(2, 5, true)));
        assert!(!spec.matches(1, &ev(2, 5, false)));
        assert!(!spec.matches(1, &ev(1, 5, true)));
        assert!(!spec.matches(1, &ev(2, 4, true)));
    }

    #[test]
    fn kinds_map_to_actions_and_latch() {
        assert_eq!(FaultKind::Crash.action(), FaultAction::Crash);
        assert_eq!(FaultKind::TornWrite.action(), FaultAction::TornWrite);
        assert_eq!(FaultKind::Transient.action(), FaultAction::Transient);
        assert!(FaultKind::Crash.stops_machine());
        assert!(FaultKind::TornWrite.stops_machine());
        assert!(!FaultKind::Latent.stops_machine());
        assert!(!FaultKind::FailDisk.stops_machine());
    }
}
