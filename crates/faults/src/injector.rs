//! The [`FaultInjector`]: a deterministic [`FaultHook`] that evaluates a
//! [`FaultPlan`] against the global I/O stream.
//!
//! The injector owns three pieces of state, all of them cheap and
//! deterministic:
//!
//! * a **global I/O counter** — every physical I/O offered to the hook
//!   gets the next 1-based index, shared across all disks, so "the k-th
//!   I/O" names the same platter operation on every replay of the same
//!   workload;
//! * a **crash latch** — once a `Crash` or `TornWrite` spec fires, every
//!   subsequent I/O is refused until the array announces a power cycle
//!   (the restart boundary), exactly like a machine that lost power;
//! * a **fired-fault record** — which specs fired, at which index, on
//!   which physical block; the explorer reads this back to know what
//!   actually happened.
//!
//! Latched refusals do *not* advance the I/O counter: the counter numbers
//! the I/Os of the pre-crash execution only, which keeps the index stable
//! for replay no matter how many times a dying operation is retried.

use crate::plan::{FaultKind, FaultPlan};
use parking_lot::Mutex;
use rda_array::{FaultAction, FaultHook, IoEvent};
use rda_obs::{EventKind, Tracer};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// One fault that actually fired, as recorded by the injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FiredFault {
    /// Global 1-based index of the I/O the fault hit.
    pub io_index: u64,
    /// Which kind fired.
    pub kind: FaultKind,
    /// Disk the I/O addressed.
    pub disk: u16,
    /// Block within the disk.
    pub block: u64,
    /// Whether the I/O was a write.
    pub is_write: bool,
}

/// Deterministic fault hook driven by a [`FaultPlan`].
///
/// Install it array-wide through
/// [`Database::install_fault_hook`](rda_core::Database::install_fault_hook)
/// (or `DiskArray::install_fault_hook` when testing the array alone). With
/// an empty plan it acts as a pure I/O counter — the explorer's "golden
/// run" uses that to measure a workload before crashing it.
#[derive(Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    ios: AtomicU64,
    latched: AtomicBool,
    state: Mutex<InjectorState>,
    /// Shared event tracer; faults that fire are announced on it as
    /// [`EventKind::FaultFired`] so a trace interleaves the injected
    /// failure with the engine events around it. Disabled by default.
    tracer: Arc<Tracer>,
}

// Manual impl because `Tracer` (a ring buffer of events) has no useful
// `Debug` form; everything diagnostic about the injector is its plan and
// counters.
impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.plan)
            .field("ios", &self.ios)
            .field("latched", &self.latched)
            .field("state", &self.state)
            .finish_non_exhaustive()
    }
}

#[derive(Debug, Default)]
struct InjectorState {
    /// One flag per plan spec: has it fired yet?
    spent: Vec<bool>,
    fired: Vec<FiredFault>,
}

impl FaultInjector {
    /// An injector executing `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> FaultInjector {
        let spent = vec![false; plan.specs.len()];
        FaultInjector {
            plan,
            ios: AtomicU64::new(0),
            latched: AtomicBool::new(false),
            state: Mutex::new(InjectorState {
                spent,
                fired: Vec::new(),
            }),
            tracer: Tracer::disabled(),
        }
    }

    /// Builder: announce fired faults on `tracer` (normally the
    /// database's own, via `Database::tracer()`), so injected failures
    /// appear inline in the event trace. Call before wrapping the
    /// injector in an [`Arc`].
    #[must_use]
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> FaultInjector {
        self.tracer = tracer;
        self
    }

    /// An injector with an empty plan: never faults, just counts I/Os.
    #[must_use]
    pub fn observer() -> FaultInjector {
        FaultInjector::new(FaultPlan::empty())
    }

    /// Physical I/Os offered so far (refused-while-latched attempts are
    /// not counted).
    #[must_use]
    pub fn ios_seen(&self) -> u64 {
        // ordering: Acquire — pairs with the AcqRel fetch_add in on_io
        // so a caller sequencing on the I/O clock also sees the fault
        // bookkeeping that preceded the count.
        self.ios.load(Ordering::Acquire)
    }

    /// Is the crash latch down (machine "off" until a power cycle)?
    #[must_use]
    pub fn is_latched(&self) -> bool {
        // ordering: Acquire — pairs with the Release stores in on_io and
        // power_cycled: seeing the latch implies seeing the fired-fault
        // record published before it.
        self.latched.load(Ordering::Acquire)
    }

    /// Every fault that fired, in firing order.
    #[must_use]
    pub fn fired(&self) -> Vec<FiredFault> {
        self.state.lock().fired.clone()
    }
}

impl FaultHook for FaultInjector {
    fn on_io(&self, ev: &IoEvent) -> FaultAction {
        // ordering: Acquire — pairs with the latch Release stores; a
        // refused I/O must observe everything the crashing I/O published.
        if self.latched.load(Ordering::Acquire) {
            return FaultAction::Crash;
        }
        // ordering: AcqRel — the counter is the fault-firing clock:
        // Release orders this I/O's count before a latch taken on it,
        // Acquire keeps later plan checks after the count.
        let k = self.ios.fetch_add(1, Ordering::AcqRel) + 1;
        let mut state = self.state.lock();
        for (i, spec) in self.plan.specs.iter().enumerate() {
            if state.spent[i] || !spec.matches(k, ev) {
                continue;
            }
            state.spent[i] = true;
            state.fired.push(FiredFault {
                io_index: k,
                kind: spec.kind,
                disk: ev.disk.0,
                block: ev.block,
                is_write: ev.is_write,
            });
            if spec.kind.stops_machine() {
                // ordering: Release — publishes the FiredFault pushed
                // above to Acquire readers of the latch.
                self.latched.store(true, Ordering::Release);
            }
            self.tracer.emit(|| EventKind::FaultFired { io_index: k });
            return spec.kind.action();
        }
        FaultAction::Proceed
    }

    fn power_cycled(&self) {
        // ordering: Release — reopening the machine must not sink below
        // whatever reset work the caller did before the cycle.
        self.latched.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultSpec;
    use rda_array::DiskId;

    fn ev(block: u64) -> IoEvent {
        IoEvent {
            disk: DiskId(0),
            block,
            is_write: true,
        }
    }

    #[test]
    fn observer_counts_and_never_faults() {
        let inj = FaultInjector::observer();
        for b in 0..5 {
            assert_eq!(inj.on_io(&ev(b)), FaultAction::Proceed);
        }
        assert_eq!(inj.ios_seen(), 5);
        assert!(inj.fired().is_empty());
    }

    #[test]
    fn crash_spec_latches_until_power_cycle() {
        let inj = FaultInjector::new(FaultPlan::crash_at(3));
        assert_eq!(inj.on_io(&ev(0)), FaultAction::Proceed);
        assert_eq!(inj.on_io(&ev(1)), FaultAction::Proceed);
        assert_eq!(inj.on_io(&ev(2)), FaultAction::Crash);
        // Latched: refused, and the counter does not advance.
        assert_eq!(inj.on_io(&ev(3)), FaultAction::Crash);
        assert_eq!(inj.on_io(&ev(4)), FaultAction::Crash);
        assert_eq!(inj.ios_seen(), 3);
        inj.power_cycled();
        assert_eq!(inj.on_io(&ev(5)), FaultAction::Proceed);
        assert_eq!(inj.ios_seen(), 4);
        let fired = inj.fired();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].io_index, 3);
        assert_eq!(fired[0].kind, FaultKind::Crash);
    }

    #[test]
    fn specs_fire_once_each() {
        let plan = FaultPlan::single(FaultSpec::on_block(FaultKind::Transient, 0, 7));
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.on_io(&ev(7)), FaultAction::Transient);
        assert_eq!(inj.on_io(&ev(7)), FaultAction::Proceed);
    }
}
