//! JSON rendering of a [`CrashpointReport`].
//!
//! Hand-rolled (no serde dependency): the report is the CI artifact the
//! crashpoint smoke job archives, so its shape is part of this crate's
//! contract and kept deliberately flat — one summary object plus one
//! compact record per explored crashpoint.

use crate::explorer::{Crashpoint, CrashpointReport};
use std::fmt::Write as _;

/// Escape a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn violations_json(violations: &[String]) -> String {
    let items: Vec<String> = violations
        .iter()
        .map(|v| format!("\"{}\"", escape(v)))
        .collect();
    format!("[{}]", items.join(","))
}

fn point_json(p: &Crashpoint, timed: bool) -> String {
    // The deterministic rendering carries billed I/O counts only; the
    // timed one adds per-phase `wall_us` and must never be byte-compared.
    let timeline = if timed {
        p.timeline.json_timed()
    } else {
        p.timeline.json_ios()
    };
    format!(
        "{{\"io_index\":{},\"fired\":{},\"clean\":{},\"committed_before\":{},\
         \"losers\":{},\"intent_replays\":{},\"torn_twins_healed\":{},\
         \"timeline\":{},\"violations\":{}}}",
        p.io_index,
        p.fired
            .map_or_else(|| "null".to_string(), |k| format!("\"{}\"", k.name())),
        p.is_clean(),
        p.committed_before,
        p.losers,
        p.intent_replays,
        p.torn_twins_healed,
        timeline,
        violations_json(&p.violations),
    )
}

impl CrashpointReport {
    /// Render the whole report as a single JSON object. Byte-identical
    /// for a given (config, trace, seed) regardless of worker count:
    /// per-phase timelines carry billed I/O counts, never wall-clock.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.render(false)
    }

    /// Like [`CrashpointReport::to_json`] but each timeline phase also
    /// carries `wall_us`. Host-dependent — for human consumption only,
    /// never for byte comparison.
    #[must_use]
    pub fn to_json_timed(&self) -> String {
        self.render(true)
    }

    fn render(&self, timed: bool) -> String {
        let points: Vec<String> = self.points.iter().map(|p| point_json(p, timed)).collect();
        format!(
            "{{\"mode\":\"{}\",\"total_ios\":{},\"exhaustive\":{},\"explored\":{},\
             \"clean\":{},\"failures\":{},\"golden_committed\":{},\
             \"golden_violations\":{},\"points\":[{}]}}",
            self.mode.name(),
            self.total_ios,
            self.exhaustive,
            self.points.len(),
            self.is_clean(),
            self.failures().len(),
            self.golden_committed,
            violations_json(&self.golden_violations),
            points.join(","),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn empty_report_renders() {
        let report = CrashpointReport {
            mode: crate::ExploreMode::Crash,
            total_ios: 0,
            exhaustive: true,
            golden_committed: 0,
            golden_violations: Vec::new(),
            points: Vec::new(),
            worker_timings: Vec::new(),
        };
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"mode\":\"crash\""));
        assert!(json.contains("\"clean\":true"));
    }
}
