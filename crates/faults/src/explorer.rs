//! Crashpoint exploration: crash a workload at *every* I/O and prove
//! recovery works from each one.
//!
//! The paper argues (§4.3) that twin-copy parity recovery restores a
//! consistent state from *any* failure point. This module turns that
//! claim into a checkable property:
//!
//! 1. **Golden run** — replay the workload trace once against a fresh
//!    database with a pure-counting injector to learn `T`, the total
//!    number of physical I/Os, and to establish the expected final state.
//! 2. **Exploration** — for each candidate crashpoint `k` (every
//!    `1..=T` when `T` is within [`ExplorerConfig::exhaustive_limit`],
//!    otherwise a seeded sample), replay the same trace against a fresh
//!    database with a fault planted at the k-th I/O, run restart
//!    recovery, and verify the survivor.
//! 3. **Verification** — the recovered database must pass the
//!    cross-layer invariant audit, the billed parity scrub, and an
//!    *exact* durability oracle: a page holds the value written by
//!    transaction `t` iff `t`'s `commit()` returned `Ok` before the
//!    crashpoint. The oracle is exact because a commit acknowledgement
//!    is issued only after the commit record is forced — an operation
//!    that observes the crash can never belong to a committed
//!    transaction.
//!
//! Replay is sequential (one transaction at a time), which makes the
//! physical I/O sequence — and therefore "the k-th I/O" — a pure
//! function of (config, trace, seed).

use crate::injector::FaultInjector;
use crate::plan::{FaultKind, FaultPlan};
use rda_core::{Database, DbConfig, DbError, LogGranularity, RecoveryPhase, Timeline};
use rda_sim::{AccessKind, TxnScript};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which fault the explorer plants at each candidate I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreMode {
    /// Power loss before the I/O (clean crash).
    Crash,
    /// Power loss mid-write: the targeted page is left half-old /
    /// half-new on the platter before the machine stops.
    TornWrite,
    /// The disk the I/O addresses dies; the workload continues degraded,
    /// then the disk is rebuilt and the state verified.
    FailDisk,
}

impl ExploreMode {
    /// Stable lower-case name, used in JSON reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ExploreMode::Crash => "crash",
            ExploreMode::TornWrite => "torn_write",
            ExploreMode::FailDisk => "fail_disk",
        }
    }

    fn plan_at(self, k: u64) -> FaultPlan {
        match self {
            ExploreMode::Crash => FaultPlan::crash_at(k),
            ExploreMode::TornWrite => FaultPlan::torn_write_at(k),
            ExploreMode::FailDisk => FaultPlan::fail_disk_at(k),
        }
    }
}

/// Exploration parameters.
#[derive(Debug, Clone, Copy)]
pub struct ExplorerConfig {
    /// Fault planted at each crashpoint.
    pub mode: ExploreMode,
    /// Explore every I/O index when the golden run performs at most this
    /// many I/Os; otherwise fall back to seeded sampling.
    pub exhaustive_limit: u64,
    /// Number of distinct crashpoints to sample above the exhaustive
    /// limit.
    pub samples: u64,
    /// Seed for both the sampled crashpoint choice and the page contents
    /// written during replay.
    pub seed: u64,
    /// Worker threads to fan crashpoint replays over. `0` means
    /// `available_parallelism`. Each worker opens its own fresh
    /// [`Database`] per crashpoint, and results are collected by
    /// crashpoint index, so the report is identical for every worker
    /// count.
    pub workers: usize,
}

impl ExplorerConfig {
    /// Defaults: crash mode, exhaustive up to 512 I/Os, 64 samples above
    /// that, worker pool sized to `available_parallelism`.
    #[must_use]
    pub fn new(mode: ExploreMode) -> ExplorerConfig {
        ExplorerConfig {
            mode,
            exhaustive_limit: 512,
            samples: 64,
            seed: 0xFA17,
            workers: 0,
        }
    }

    /// The worker-pool width [`explore`] will actually use: `workers`,
    /// or `available_parallelism` when it is 0.
    #[must_use]
    pub fn effective_workers(&self) -> usize {
        if self.workers != 0 {
            return self.workers;
        }
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
    }
}

/// Outcome of recovering from one crashpoint.
#[derive(Debug, Clone)]
pub struct Crashpoint {
    /// The global I/O index the fault was planted at (1-based).
    pub io_index: u64,
    /// The fault kind that actually fired, if any.
    pub fired: Option<FaultKind>,
    /// Transactions whose `commit()` was acknowledged before the fault —
    /// the ones the durability oracle requires to survive.
    pub committed_before: u64,
    /// Loser transactions rolled back by restart recovery.
    pub losers: u64,
    /// Staged write intents replayed (interrupted read-modify-writes).
    pub intent_replays: u64,
    /// Torn parity twins healed during recovery.
    pub torn_twins_healed: u64,
    /// Per-phase recovery breakdown: restart phases from
    /// [`rda_core::RecoveryReport`], preceded by a `media_rebuild` phase
    /// in [`ExploreMode::FailDisk`]. The billed I/O counts are
    /// deterministic; the wall-clock inside is host-dependent and only
    /// surfaced by the timed JSON rendering.
    pub timeline: Timeline,
    /// Everything that went wrong at this crashpoint (empty ⇔ clean).
    pub violations: Vec<String>,
}

impl Crashpoint {
    /// Did recovery from this crashpoint verify clean?
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// How much work one explorer worker did. Deliberately *not* part of
/// [`CrashpointReport::to_json`]: wall-clock depends on the host, and the
/// JSON report must stay byte-identical across worker counts.
#[derive(Debug, Clone, Copy)]
pub struct WorkerTiming {
    /// Worker index (0-based).
    pub worker: usize,
    /// Crashpoints this worker replayed.
    pub points: u64,
    /// Busy wall-clock of this worker, from first claim to pool drain.
    pub elapsed: Duration,
}

/// Full result of one exploration.
#[derive(Debug, Clone)]
pub struct CrashpointReport {
    /// The fault mode explored.
    pub mode: ExploreMode,
    /// Physical I/Os the golden (fault-free) run performed.
    pub total_ios: u64,
    /// Whether every I/O index was explored (vs. a seeded sample).
    pub exhaustive: bool,
    /// Transactions committed by the golden run.
    pub golden_committed: u64,
    /// Problems with the golden run itself (must be empty for the
    /// exploration to mean anything).
    pub golden_violations: Vec<String>,
    /// One entry per explored crashpoint, in increasing I/O order.
    pub points: Vec<Crashpoint>,
    /// Per-worker replay timing (one entry per pool worker, sorted by
    /// worker index). Excluded from [`CrashpointReport::to_json`].
    pub worker_timings: Vec<WorkerTiming>,
}

impl CrashpointReport {
    /// Did the golden run and every explored crashpoint verify clean?
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.golden_violations.is_empty() && self.points.iter().all(Crashpoint::is_clean)
    }

    /// The crashpoints that failed verification.
    #[must_use]
    pub fn failures(&self) -> Vec<&Crashpoint> {
        self.points.iter().filter(|p| !p.is_clean()).collect()
    }
}

/// Deterministic page payload for transaction `txn`'s `pos`-th access.
/// Mirrors the simulator driver's content scheme: one nonzero byte per
/// write, so a recovered page identifies exactly which write it holds.
#[must_use]
pub fn value_byte(seed: u64, txn: usize, pos: usize) -> u8 {
    let mixed = seed
        ^ (txn as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (pos as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let mixed = mixed.wrapping_mul(0x94D0_49BB_1331_11EB);
    ((mixed >> 32) as u8) | 1
}

/// What one replay attempt observed.
struct ReplayRun {
    /// Pages → byte written by the last *acknowledged-committed* writer.
    oracle: BTreeMap<u32, u8>,
    /// Transactions whose commit was acknowledged.
    committed: u64,
    /// The machine stopped (crash latch / dead disk) mid-replay.
    stopped: bool,
    /// An error that the fault model does not explain.
    violation: Option<String>,
}

/// Replay `scripts` sequentially against `db`. `stop_on_array_error`
/// widens the "machine stopped" classification from `Crashed` to any
/// array error (used in [`ExploreMode::FailDisk`], where a dying disk
/// surfaces as `DiskFailed`/`Unrecoverable` rather than a crash).
fn replay(
    db: &Database,
    scripts: &[TxnScript],
    seed: u64,
    page_mode: bool,
    stop_on_array_error: bool,
) -> ReplayRun {
    let mut run = ReplayRun {
        oracle: BTreeMap::new(),
        committed: 0,
        stopped: false,
        violation: None,
    };
    'scripts: for (idx, script) in scripts.iter().enumerate() {
        let mut pending: BTreeMap<u32, u8> = BTreeMap::new();
        let mut tx = db.begin();
        for (pos, access) in script.accesses.iter().enumerate() {
            let result = match access.kind {
                AccessKind::Read => tx.read(access.page).map(|_| ()),
                AccessKind::Update => {
                    let value = value_byte(seed, idx, pos);
                    let write = if page_mode {
                        tx.write(access.page, &[value])
                    } else {
                        tx.update(access.page, 0, &[value])
                    };
                    if write.is_ok() {
                        pending.insert(access.page, value);
                    }
                    write
                }
            };
            if let Err(e) = result {
                // The handle must not run its Drop-abort against a dead
                // engine — exactly what a real client loses in a crash.
                std::mem::forget(tx);
                classify_stop(e, stop_on_array_error, &mut run);
                break 'scripts;
            }
        }
        // End of transaction: scripted abort or commit. Either consumes
        // the handle even on error.
        let eot = if script.aborts {
            tx.abort()
        } else {
            tx.commit().map(|_| ())
        };
        match eot {
            Ok(()) => {
                if !script.aborts {
                    run.committed += 1;
                    run.oracle.append(&mut pending);
                }
            }
            Err(e) => {
                classify_stop(e, stop_on_array_error, &mut run);
                break 'scripts;
            }
        }
    }
    run
}

/// Route one operation error into `stopped` (explained by the planted
/// fault) or `violation` (a bug).
fn classify_stop(e: DbError, stop_on_array_error: bool, run: &mut ReplayRun) {
    match e {
        DbError::Array(rda_array::ArrayError::Crashed) => run.stopped = true,
        DbError::Array(_) if stop_on_array_error => run.stopped = true,
        other => run.violation = Some(format!("unexpected operation error: {other}")),
    }
}

/// Check a recovered (or rebuilt) database against the durability
/// oracle plus the repo's own consistency machinery.
fn verify_survivor(db: &Database, oracle: &BTreeMap<u32, u8>, violations: &mut Vec<String>) {
    let audit = db.audit();
    for v in audit.violations() {
        violations.push(format!("audit: {v}"));
    }
    match db.verify() {
        Ok(list) => violations.extend(list.into_iter().map(|v| format!("verify: {v}"))),
        Err(e) => violations.push(format!("verify failed to run: {e}")),
    }
    for (&page, &want) in oracle {
        match db.read_page(page) {
            Ok(data) => {
                let got = data.first().copied().unwrap_or(0);
                if got != want {
                    violations.push(format!(
                        "durability: page {page} holds {got:#04x}, committed value was {want:#04x}"
                    ));
                }
            }
            Err(e) => violations.push(format!("durability: page {page} unreadable: {e}")),
        }
    }
}

/// Choose the crashpoints to explore: all of `1..=total` under the
/// limit, otherwise `samples` distinct indices drawn with xorshift64.
fn choose_crashpoints(total: u64, cfg: &ExplorerConfig) -> (Vec<u64>, bool) {
    crashpoint_schedule(total, cfg.exhaustive_limit, cfg.samples, cfg.seed)
}

/// The crashpoint schedule for a run of `total` I/Os: every index in
/// `1..=total` when `total ≤ exhaustive_limit` (second element `true`),
/// otherwise `samples` distinct 1-based indices drawn with a seeded
/// xorshift64 (second element `false`). Pure function of its arguments,
/// so external drivers (the `rda-check` schedule sweeper) can plant
/// faults at exactly the indices [`explore`] would, without going
/// through a full [`ExplorerConfig`].
#[must_use]
pub fn crashpoint_schedule(
    total: u64,
    exhaustive_limit: u64,
    samples: u64,
    seed: u64,
) -> (Vec<u64>, bool) {
    if total <= exhaustive_limit {
        return ((1..=total).collect(), true);
    }
    let mut state = seed | 1;
    let mut picked = BTreeSet::new();
    let want = (samples.min(total)) as usize;
    while picked.len() < want {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        picked.insert(state % total + 1);
    }
    (picked.into_iter().collect(), false)
}

/// Rebuild disk `dead` from its survivors, appending a `media_rebuild`
/// phase (billed I/O delta plus wall-clock) to `timeline`.
fn rebuild_timed(db: &Database, dead: u16, timeline: &mut Timeline) -> Result<(), DbError> {
    let before = db.stats().array;
    let start = Instant::now();
    db.media_recover(dead)?;
    let delta = db.stats().array.delta(&before);
    timeline.push(
        RecoveryPhase::MediaRebuild,
        start.elapsed(),
        delta.reads,
        delta.writes,
    );
    Ok(())
}

/// Run one crashpoint: replay with a fault planted at I/O `k`, recover,
/// verify.
fn explore_point(
    db_cfg: &DbConfig,
    scripts: &[TxnScript],
    cfg: &ExplorerConfig,
    k: u64,
) -> Crashpoint {
    let db = Database::open(db_cfg.clone());
    let injector = Arc::new(FaultInjector::new(cfg.mode.plan_at(k)).with_tracer(db.tracer()));
    db.install_fault_hook(injector.clone());

    let page_mode = db_cfg.granularity == LogGranularity::Page;
    let run = replay(
        &db,
        scripts,
        cfg.seed,
        page_mode,
        cfg.mode == ExploreMode::FailDisk,
    );
    let mut point = Crashpoint {
        io_index: k,
        fired: None,
        committed_before: run.committed,
        losers: 0,
        intent_replays: 0,
        torn_twins_healed: 0,
        timeline: Timeline::default(),
        violations: Vec::new(),
    };
    if let Some(v) = run.violation {
        point.violations.push(v);
    }
    let fired = injector.fired();
    point.fired = fired.first().map(|f| f.kind);
    if fired.is_empty() {
        point.violations.push(format!(
            "planted fault at I/O {k} never fired — replay diverged from the golden run"
        ));
        return point;
    }

    match cfg.mode {
        ExploreMode::Crash | ExploreMode::TornWrite => {
            if !run.stopped {
                point.violations.push(format!(
                    "fault fired at I/O {k} but no operation observed the crash"
                ));
                return point;
            }
            db.crash();
            match db.recover() {
                Ok(report) => {
                    point.losers = report.losers.len() as u64;
                    point.intent_replays = report.intent_replays;
                    point.torn_twins_healed = report.torn_twins_healed;
                    point.timeline = report.timeline;
                }
                Err(e) => {
                    point
                        .violations
                        .push(format!("restart recovery failed: {e}"));
                    return point;
                }
            }
        }
        ExploreMode::FailDisk => {
            let dead = fired[0].disk;
            if run.stopped {
                // A dying disk surfaced as an operation error: treat it
                // as the documented disk-death-plus-crash flow — crash,
                // rebuild the disk, then run restart recovery.
                db.crash();
                if let Err(e) = rebuild_timed(&db, dead, &mut point.timeline) {
                    point.violations.push(format!("media recovery failed: {e}"));
                    return point;
                }
                match db.recover() {
                    Ok(report) => {
                        point.losers = report.losers.len() as u64;
                        point.intent_replays = report.intent_replays;
                        point.torn_twins_healed = report.torn_twins_healed;
                        point.timeline.phases.extend(report.timeline.phases);
                    }
                    Err(e) => {
                        point
                            .violations
                            .push(format!("restart recovery failed: {e}"));
                        return point;
                    }
                }
            } else if let Err(e) = rebuild_timed(&db, dead, &mut point.timeline) {
                // The workload finished degraded; rebuild before verify.
                point.violations.push(format!("media recovery failed: {e}"));
                return point;
            }
        }
    }

    verify_survivor(&db, &run.oracle, &mut point.violations);
    point
}

/// Explore crashpoints of `scripts` under `db_cfg`.
///
/// Opens a fresh database per crashpoint, so the caller's own databases
/// are never touched. See the module docs for the protocol.
#[must_use]
pub fn explore(db_cfg: &DbConfig, scripts: &[TxnScript], cfg: &ExplorerConfig) -> CrashpointReport {
    // Golden run: count I/Os and establish the fault-free end state.
    let golden_db = Database::open(db_cfg.clone());
    let counter = Arc::new(FaultInjector::observer());
    golden_db.install_fault_hook(counter.clone());
    let page_mode = db_cfg.granularity == LogGranularity::Page;
    let golden = replay(&golden_db, scripts, cfg.seed, page_mode, false);
    let total = counter.ios_seen();

    let mut golden_violations = Vec::new();
    if let Some(v) = golden.violation {
        golden_violations.push(format!("golden run: {v}"));
    }
    if golden.stopped {
        golden_violations.push("golden run stopped without any planted fault".to_string());
    }
    verify_survivor(&golden_db, &golden.oracle, &mut golden_violations);

    let (ks, exhaustive) = choose_crashpoints(total, cfg);
    let workers = cfg.effective_workers().min(ks.len()).max(1);
    let (points, worker_timings) = if workers <= 1 {
        let start = Instant::now();
        let points: Vec<Crashpoint> = ks
            .into_iter()
            .map(|k| explore_point(db_cfg, scripts, cfg, k))
            .collect();
        let timing = WorkerTiming {
            worker: 0,
            points: points.len() as u64,
            elapsed: start.elapsed(),
        };
        (points, vec![timing])
    } else {
        explore_points_parallel(db_cfg, scripts, cfg, &ks, workers)
    };

    CrashpointReport {
        mode: cfg.mode,
        total_ios: total,
        exhaustive,
        golden_committed: golden.committed,
        golden_violations,
        points,
        worker_timings,
    }
}

/// Fan `ks` out over `workers` scoped threads. Workers claim crashpoint
/// *indices* from a shared dispenser; each replay opens its own fresh
/// [`Database`], so replays share nothing, and results are slotted back
/// by index — the output is the same in-order `Vec` the sequential path
/// produces, regardless of scheduling.
fn explore_points_parallel(
    db_cfg: &DbConfig,
    scripts: &[TxnScript],
    cfg: &ExplorerConfig,
    ks: &[u64],
    workers: usize,
) -> (Vec<Crashpoint>, Vec<WorkerTiming>) {
    let next = AtomicUsize::new(0);
    let scope_result = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let next = &next;
                s.spawn(move |_| {
                    let start = Instant::now();
                    let mut done: Vec<(usize, Crashpoint)> = Vec::new();
                    loop {
                        // ordering: Relaxed — work-queue index claim;
                        // results publish via the scope join.
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&k) = ks.get(i) else { break };
                        done.push((i, explore_point(db_cfg, scripts, cfg, k)));
                    }
                    (w, done, start.elapsed())
                })
            })
            .collect();

        let mut slots: Vec<Option<Crashpoint>> = Vec::with_capacity(ks.len());
        slots.resize_with(ks.len(), || None);
        let mut timings = Vec::with_capacity(workers);
        for handle in handles {
            match handle.join() {
                Ok((worker, done, elapsed)) => {
                    timings.push(WorkerTiming {
                        worker,
                        points: done.len() as u64,
                        elapsed,
                    });
                    for (i, point) in done {
                        slots[i] = Some(point);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        (slots, timings)
    });
    let (slots, mut timings) = match scope_result {
        Ok(pair) => pair,
        Err(payload) => std::panic::resume_unwind(payload),
    };
    timings.sort_by_key(|t| t.worker);
    // Every index was claimed by exactly one worker and every worker was
    // joined, so each slot is filled.
    let points: Vec<Crashpoint> = slots.into_iter().flatten().collect();
    debug_assert_eq!(points.len(), ks.len());
    (points, timings)
}
