//! Seeded single-fault scenarios: the acceptance cases that are easier
//! to read (and debug) as straight-line stories than as exploration
//! sweeps.

use rda_core::{Database, DbConfig, DbError, EngineKind};
use rda_faults::{FaultInjector, FaultKind, FaultPlan, FaultSpec};
use std::sync::Arc;

fn open_small() -> Database {
    Database::open(DbConfig::small_test(EngineKind::Rda))
}

fn commit_value(db: &Database, page: u32, value: u8) {
    let mut tx = db.begin();
    tx.write(page, &[value]).expect("write");
    tx.commit().expect("commit");
}

fn page_value(db: &Database, page: u32) -> u8 {
    db.read_page(page).expect("read")[0]
}

/// The PR's acceptance case: a torn write on the *working* parity twin
/// while its group is dirty is detected at restart and recovered — the
/// committed state survives, the loser's update disappears, and the
/// torn twins are healed.
#[test]
fn torn_working_twin_is_detected_and_recovered() {
    let db = open_small();
    commit_value(&db, 0, 0xAA);

    // One in-flight transaction dirties 9 distinct pages; the 8-frame
    // buffer must evict at least one, stealing it into the array and
    // leaving its group dirty (working parity twin live on disk).
    let mut tx = db.begin();
    for g in 0..8 {
        tx.write(g * 4, &[0xBB]).expect("dirty page");
    }
    tx.write(3, &[0xBB]).expect("overflow the buffer");

    // Tear the *current* parity twin of every group: for the dirty
    // group(s) that is precisely the working twin (Current_Parity
    // resolves to the higher timestamp, Figure 7); for clean groups it
    // is the committed twin.
    for g in 0..8 {
        db.tear_current_parity(g);
    }

    db.crash();
    drop(tx); // handle outlives the "machine" — must not panic
    let report = db.recover().expect("restart recovery");

    assert_eq!(report.losers.len(), 1, "the in-flight txn must be a loser");
    assert!(
        report.torn_twins_healed > 0,
        "bitmap scan should heal torn current twins: {report:?}"
    );
    // Committed state survives; every loser write is gone.
    assert_eq!(page_value(&db, 0), 0xAA);
    for g in 1..8 {
        assert_eq!(
            page_value(&db, g * 4),
            0,
            "loser write on page {} survived",
            g * 4
        );
    }
    assert_eq!(page_value(&db, 3), 0);
    let audit = db.audit();
    assert!(audit.is_clean(), "{:?}", audit.violations());
    assert!(db.verify().expect("verify").is_empty());
}

/// Satellite: a latent sector error caught by the patrol scrubber before
/// a disk failure is harmless — media recovery still rebuilds the dead
/// disk from healthy redundancy.
#[test]
fn scrubbed_latent_error_survives_later_disk_failure() {
    let db = open_small();
    for page in 0..8 {
        commit_value(&db, page, 0x10 + page as u8);
    }

    // Pages 4 and 5 share a group in the 4-page-group layout. Rot page
    // 5's sector, scrub it away, then kill page 4's disk.
    db.corrupt_data_page(5);
    let scrub = db.scrub().expect("scrub");
    assert_eq!(scrub.data_repaired, 1, "{scrub:?}");

    db.fail_disk_of_page(4);
    let rebuilt = db.media_recover_of_page(4).expect("media recovery");
    assert!(rebuilt > 0);
    for page in 0..8 {
        assert_eq!(page_value(&db, page), 0x10 + page as u8);
    }
    assert!(db.audit().is_clean());
}

/// The contrast case that motivates scrubbing: the same latent error
/// left in place turns a single disk failure into an unrecoverable
/// double failure for that group.
#[test]
fn unscrubbed_latent_error_turns_disk_failure_into_data_loss() {
    let db = open_small();
    for page in 0..8 {
        commit_value(&db, page, 0x10 + page as u8);
    }

    db.corrupt_data_page(5); // latent, never scrubbed
    db.fail_disk_of_page(4);

    // Rebuilding page 4's disk needs every surviving member of the
    // group readable — page 5's rotten sector blocks it.
    let err = db.media_recover_of_page(4).expect_err("double failure");
    assert!(
        matches!(err, DbError::Array(rda_array::ArrayError::Unrecoverable(_))),
        "expected Unrecoverable, got {err:?}"
    );
}

/// Latent errors injected through a fault plan (rather than seeded
/// directly) are also found and repaired by the scrubber.
#[test]
fn planned_latent_error_is_scrub_repaired() {
    let db = open_small();
    // Rot the first platter write the next transaction performs.
    let injector = Arc::new(FaultInjector::new(FaultPlan::single(
        FaultSpec::new(FaultKind::Latent).writes_only(),
    )));
    db.install_fault_hook(injector.clone());
    commit_value(&db, 12, 0x7F);
    db.clear_fault_hook();

    let fired = injector.fired();
    assert_eq!(fired.len(), 1);
    assert_eq!(fired[0].kind, FaultKind::Latent);
    let stats = db.fault_stats().expect("stats");
    assert_eq!(stats.latent_errors(), 1);

    let scrub = db.scrub().expect("scrub");
    assert_eq!(
        scrub.data_repaired + scrub.parity_repaired,
        1,
        "exactly one rotten sector to repair: {scrub:?}"
    );
    assert_eq!(page_value(&db, 12), 0x7F);
    // A second pass finds nothing.
    let again = db.scrub().expect("scrub");
    assert_eq!(again.data_repaired + again.parity_repaired, 0);
}

/// A transient controller error surfaces to the caller once; the retry
/// finds the disk state untouched and succeeds.
#[test]
fn transient_error_surfaces_once_then_retry_succeeds() {
    let db = open_small();
    commit_value(&db, 9, 0x42);
    // Reopen so the page is read from the platter, not the buffer.
    let db = open_small();
    commit_value(&db, 9, 0x42);
    db.crash();
    db.recover().expect("recover");

    let injector = Arc::new(FaultInjector::new(FaultPlan::single(FaultSpec::new(
        FaultKind::Transient,
    ))));
    db.install_fault_hook(injector);

    let err = db.read_page(9).expect_err("transient must surface");
    assert!(
        matches!(err, DbError::Array(rda_array::ArrayError::Transient { .. })),
        "got {err:?}"
    );
    // One-shot: the retry proceeds and sees the committed value.
    assert_eq!(page_value(&db, 9), 0x42);
}
