//! End-to-end crashpoint exploration: crash (or tear, or kill a disk
//! under) a mixed commit/abort workload at every physical I/O and prove
//! restart recovery restores exactly the committed state each time.

use rda_core::{DbConfig, EngineKind};
use rda_faults::{explore, CrashpointReport, ExploreMode, ExplorerConfig};
use rda_sim::{TxnScript, WorkloadSpec};

/// A small all-update workload with a scripted abort mixed in, sized so
/// the golden run stays well under the exhaustive limit.
fn small_mixed_workload(count: usize) -> Vec<TxnScript> {
    let mut spec = WorkloadSpec::high_update(32, 8);
    spec.s = 4;
    spec.f_u = 1.0;
    spec.p_u = 1.0;
    spec.p_b = 0.0;
    let mut scripts = spec.generate(count, 0x00C0_FFEE);
    // Make the mix deterministic: exactly one scripted abort.
    if let Some(s) = scripts.get_mut(count / 2) {
        s.aborts = true;
    }
    scripts
}

fn assert_clean(report: &CrashpointReport) {
    assert!(
        report.golden_violations.is_empty(),
        "golden run broken: {:?}",
        report.golden_violations
    );
    let failures = report.failures();
    assert!(
        failures.is_empty(),
        "{} of {} crashpoints failed, first: io {} -> {:?}",
        failures.len(),
        report.points.len(),
        failures[0].io_index,
        failures[0].violations
    );
}

#[test]
fn exhaustive_crash_exploration_recovers_everywhere() {
    let scripts = small_mixed_workload(5);
    let cfg = ExplorerConfig {
        exhaustive_limit: 4096,
        ..ExplorerConfig::new(ExploreMode::Crash)
    };
    let report = explore(&DbConfig::small_test(EngineKind::Rda), &scripts, &cfg);

    assert!(
        report.exhaustive,
        "workload unexpectedly large: {} I/Os",
        report.total_ios
    );
    assert!(report.total_ios > 0);
    assert_eq!(report.points.len() as u64, report.total_ios);
    assert!(report.golden_committed >= 3);
    assert_clean(&report);
    // Crashing mid-transaction must actually produce losers somewhere,
    // and early crashpoints must land before any commit.
    assert!(report.points.iter().any(|p| p.losers > 0));
    assert!(report.points.iter().any(|p| p.committed_before == 0));
    assert!(report.points.iter().any(|p| p.committed_before > 0));
    // Every recovered crashpoint carries a per-phase timeline; the
    // bitmap scan always reads one parity header per group, so at least
    // one surviving point must show phase I/O.
    assert!(report
        .points
        .iter()
        .all(|p| !p.is_clean() || !p.timeline.phases.is_empty()));
    assert!(report
        .points
        .iter()
        .any(|p| p.is_clean() && p.timeline.total_ios() > 0));
    // Both JSON renderings surface the timeline; only the timed one
    // carries wall-clock.
    let json = report.to_json();
    assert!(json.contains("\"timeline\":[{\"phase\":\"intent_replay\""));
    assert!(!json.contains("wall_us"));
    assert!(report.to_json_timed().contains("\"wall_us\":"));
}

#[test]
fn exhaustive_torn_write_exploration_recovers_everywhere() {
    let scripts = small_mixed_workload(4);
    let cfg = ExplorerConfig {
        exhaustive_limit: 4096,
        ..ExplorerConfig::new(ExploreMode::TornWrite)
    };
    let report = explore(&DbConfig::small_test(EngineKind::Rda), &scripts, &cfg);

    assert!(report.exhaustive);
    assert_clean(&report);
    // Every write I/O got torn at some crashpoint; at least one of those
    // tears must have landed on a page recovery had to repair explicitly
    // (a staged-intent replay or a torn parity twin healed by the
    // bitmap scan) rather than plain loser undo.
    assert!(
        report
            .points
            .iter()
            .any(|p| p.intent_replays > 0 || p.torn_twins_healed > 0),
        "no crashpoint exercised torn-page repair"
    );
}

#[test]
fn exhaustive_disk_failure_exploration_rebuilds_everywhere() {
    let scripts = small_mixed_workload(3);
    let cfg = ExplorerConfig {
        exhaustive_limit: 4096,
        ..ExplorerConfig::new(ExploreMode::FailDisk)
    };
    let report = explore(&DbConfig::small_test(EngineKind::Rda), &scripts, &cfg);

    assert!(report.exhaustive);
    assert_clean(&report);
    // Disk death always costs a rebuild: every point's timeline leads
    // with a media_rebuild phase that actually moved data.
    assert!(report
        .points
        .iter()
        .all(|p| p.timeline.phases.first().is_some_and(|ph| {
            ph.phase == rda_core::RecoveryPhase::MediaRebuild && ph.reads + ph.writes > 0
        })));
    assert!(report.to_json().contains("\"phase\":\"media_rebuild\""));
}

#[test]
fn sampling_kicks_in_above_the_exhaustive_limit() {
    let scripts = small_mixed_workload(4);
    let cfg = ExplorerConfig {
        exhaustive_limit: 10,
        samples: 7,
        ..ExplorerConfig::new(ExploreMode::Crash)
    };
    let report = explore(&DbConfig::small_test(EngineKind::Rda), &scripts, &cfg);

    assert!(!report.exhaustive);
    assert!(report.total_ios > 10);
    assert_eq!(report.points.len(), 7);
    // Distinct, in-range, increasing.
    for w in report.points.windows(2) {
        assert!(w[0].io_index < w[1].io_index);
    }
    assert!(report
        .points
        .iter()
        .all(|p| (1..=report.total_ios).contains(&p.io_index)));
    assert_clean(&report);
}

#[test]
fn parallel_exploration_matches_sequential_byte_for_byte() {
    let scripts = small_mixed_workload(4);
    let base = ExplorerConfig {
        exhaustive_limit: 4096,
        ..ExplorerConfig::new(ExploreMode::Crash)
    };
    // Tracing on: the event ring must not perturb replay determinism or
    // leak wall-clock into the report.
    let db_cfg = DbConfig::small_test(EngineKind::Rda).trace(4096);
    let seq = explore(&db_cfg, &scripts, &ExplorerConfig { workers: 1, ..base });
    let par = explore(&db_cfg, &scripts, &ExplorerConfig { workers: 4, ..base });

    assert!(seq.exhaustive);
    assert_eq!(seq.worker_timings.len(), 1);
    assert_eq!(par.worker_timings.len(), 4);
    assert_eq!(
        par.worker_timings.iter().map(|t| t.points).sum::<u64>(),
        par.points.len() as u64,
        "every crashpoint accounted to exactly one worker"
    );
    assert_eq!(
        seq.to_json(),
        par.to_json(),
        "worker count must not change the report"
    );
    assert_clean(&seq);
}

#[test]
fn report_serializes_to_json() {
    let scripts = small_mixed_workload(2);
    let cfg = ExplorerConfig {
        exhaustive_limit: 5,
        samples: 3,
        ..ExplorerConfig::new(ExploreMode::Crash)
    };
    let report = explore(&DbConfig::small_test(EngineKind::Rda), &scripts, &cfg);
    let json = report.to_json();
    assert!(json.contains("\"mode\":\"crash\""));
    assert!(json.contains("\"total_ios\":"));
    assert!(json.contains("\"points\":["));
    assert!(json.contains("\"clean\":"));
}
