//! Golden-schema snapshot of the crashpoint explorer's JSON report.
//!
//! The report is the artifact CI archives and downstream tooling parses,
//! so its *shape* — key names, key order, the per-point record, the
//! timeline phase list — is a contract. This test pins it with the
//! checker's own JSON parser (which preserves member order); a field
//! rename or reorder fails here instead of silently breaking consumers.

use rda_check::Json;
use rda_core::{DbConfig, EngineKind, RecoveryPhase, Timeline};
use rda_faults::{explore, ExploreMode, ExplorerConfig};
use rda_sim::WorkloadSpec;
use std::time::Duration;

fn tiny_report_json() -> String {
    let mut spec = WorkloadSpec::high_update(16, 4);
    spec.s = 2;
    spec.f_u = 1.0;
    spec.p_u = 1.0;
    spec.p_b = 0.0;
    let scripts = spec.generate(3, 0xBEEF);
    let cfg = ExplorerConfig {
        exhaustive_limit: 0,
        samples: 4,
        ..ExplorerConfig::new(ExploreMode::Crash)
    };
    explore(&DbConfig::small_test(EngineKind::Rda), &scripts, &cfg).to_json()
}

#[test]
fn explorer_report_schema_is_pinned() {
    let text = tiny_report_json();
    let json = Json::parse(&text).expect("explorer report must be valid JSON");

    assert_eq!(
        json.keys(),
        vec![
            "mode",
            "total_ios",
            "exhaustive",
            "explored",
            "clean",
            "failures",
            "golden_committed",
            "golden_violations",
            "points",
        ],
        "top-level report schema changed"
    );
    assert_eq!(json.get("mode").and_then(Json::as_str), Some("crash"));
    assert!(json.get("total_ios").and_then(Json::as_u64).unwrap_or(0) > 0);

    let points = json
        .get("points")
        .and_then(Json::as_arr)
        .expect("'points' must be an array");
    assert!(!points.is_empty(), "explorer sampled no crashpoints");
    for point in points {
        assert_eq!(
            point.keys(),
            vec![
                "io_index",
                "fired",
                "clean",
                "committed_before",
                "losers",
                "intent_replays",
                "torn_twins_healed",
                "timeline",
                "violations",
            ],
            "per-point record schema changed"
        );
        let timeline = point
            .get("timeline")
            .and_then(Json::as_arr)
            .expect("'timeline' must be an array");
        for phase in timeline {
            assert_eq!(
                phase.keys(),
                vec!["phase", "reads", "writes"],
                "timeline phase record schema changed"
            );
        }
    }
}

/// The deterministic rendering must never leak wall-clock fields.
#[test]
fn deterministic_report_carries_no_wall_clock() {
    let text = tiny_report_json();
    assert!(
        !text.contains("wall_us"),
        "to_json() leaked wall-clock timing; that belongs to to_json_timed()"
    );
}

/// `Timeline::json_ios` renders phases in push order with stable names.
#[test]
fn timeline_json_ios_shape() {
    let mut t = Timeline::default();
    t.push(RecoveryPhase::IntentReplay, Duration::ZERO, 1, 2);
    t.push(RecoveryPhase::UndoParity, Duration::ZERO, 3, 4);
    let json = t.json_ios();
    let parsed = Json::parse(&json).expect("json_ios must be valid JSON");
    let arr = parsed.as_arr().expect("array");
    assert_eq!(arr.len(), 2);
    assert_eq!(
        arr[0].get("phase").and_then(Json::as_str),
        Some("intent_replay")
    );
    assert_eq!(arr[0].get("reads").and_then(Json::as_u64), Some(1));
    assert_eq!(arr[0].get("writes").and_then(Json::as_u64), Some(2));
    assert_eq!(
        arr[1].get("phase").and_then(Json::as_str),
        Some("undo_parity")
    );
}
