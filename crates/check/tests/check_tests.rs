//! End-to-end tests of the model-based differential checker: mutation
//! sensitivity (the checker must have teeth), sweep cleanliness on the
//! real engine, worker-count determinism, corpus replay, and the
//! schedule JSON round-trip the corpus depends on.

use rda_check::{
    corpus, generate, generate_threaded, replay_threaded_dir, run_schedule, run_threaded, shrink,
    shrink_threaded, sweep, threaded_corpus_dir, threaded_sweep, ProtocolMutations, Schedule,
    SweepConfig, ThreadedSchedule, ThreadedSweepConfig,
};

/// With the commit-time twin flip compiled out, the sweep must find a
/// counterexample quickly and the shrinker must reduce it to a handful
/// of ops — the acceptance bound is 12, typical repros are ~5.
#[test]
fn mutation_skip_twin_flip_is_caught_and_shrinks() {
    let cfg = SweepConfig {
        seed: 0x1992,
        schedules: 200,
        faults_per_schedule: 1,
        workers: 2,
        mutations: ProtocolMutations {
            skip_commit_twin_flip: true,
        },
        stop_on_failure: true,
    };
    let report = sweep(&cfg);
    let failures = report.failures();
    let first = failures
        .first()
        .expect("mutation sweep found no counterexample: the checker has no teeth");
    let shrunk = shrink(&first.schedule, cfg.mutations, 400);
    assert!(
        !run_schedule(&shrunk.schedule, cfg.mutations).ok(),
        "shrunk schedule no longer fails"
    );
    assert!(
        shrunk.schedule.ops.len() <= 12,
        "mutation repro did not shrink below 12 ops (got {})",
        shrunk.schedule.ops.len()
    );
}

/// The unmutated engine survives a seeded fault-laden sweep.
#[test]
fn clean_sweep_over_seeded_schedules() {
    let cfg = SweepConfig {
        seed: 0x1992,
        schedules: 40,
        faults_per_schedule: 2,
        workers: 2,
        mutations: ProtocolMutations::default(),
        stop_on_failure: false,
    };
    let report = sweep(&cfg);
    assert_eq!(report.results.len(), 40);
    let failures = report.failures();
    assert!(
        failures.is_empty(),
        "sweep found a counterexample: '{}' ({}) — {:?}",
        failures[0].schedule.name,
        failures[0].variant,
        failures[0].violations
    );
}

/// The sweep report is a pure function of the configuration minus
/// `workers`: byte-identical JSON at 1 and 4 workers.
#[test]
fn sweep_report_is_worker_count_independent() {
    let base = SweepConfig {
        seed: 0xD15C,
        schedules: 24,
        faults_per_schedule: 2,
        workers: 1,
        mutations: ProtocolMutations::default(),
        stop_on_failure: false,
    };
    let seq = sweep(&base);
    let par = sweep(&SweepConfig { workers: 4, ..base });
    assert_eq!(seq.to_json(), par.to_json());
}

/// Every corpus entry replays with its expectations met: verdict,
/// determinism, and required protocol events.
#[test]
fn corpus_replays_green() {
    let count = corpus::replay_dir(&corpus::default_dir())
        .unwrap_or_else(|e| panic!("corpus replay failed: {e}"));
    assert!(count >= 5, "corpus has shrunk to {count} entries");
}

/// Schedules survive the JSON round-trip exactly — the property the
/// corpus and `--replay` depend on.
#[test]
fn schedule_json_round_trips() {
    for index in 0..50 {
        let sched = generate(0xC0DE, index);
        let json = sched.to_json().to_string();
        let parsed = rda_check::Json::parse(&json)
            .unwrap_or_else(|e| panic!("emitted JSON unparseable: {e}"));
        let back =
            Schedule::from_json(&parsed).unwrap_or_else(|e| panic!("round-trip failed: {e}"));
        assert_eq!(
            back, sched,
            "schedule {index} changed across the round-trip"
        );
    }
}

/// A planted fault variant also round-trips (fault object included).
#[test]
fn fault_variant_round_trips() {
    let base = generate(0xC0DE, 3);
    let variant = rda_check::fault_variant(&base, 1, 7);
    let json = variant.to_json().to_string();
    let parsed = rda_check::Json::parse(&json).expect("parse");
    let back = Schedule::from_json(&parsed).expect("round-trip");
    assert_eq!(back, variant);
}

/// The threaded sweep against the sharded engine stays clean and its
/// report is byte-identical at any worker count — the property that
/// lets CI shard the sweep freely.
#[test]
fn threaded_sweep_is_clean_and_worker_count_independent() {
    let base = ThreadedSweepConfig {
        seed: 0x1992,
        schedules: 32,
        faults_per_schedule: 2,
        workers: 1,
        mutations: ProtocolMutations::default(),
        stop_on_failure: false,
    };
    let seq = threaded_sweep(&base);
    assert_eq!(seq.results.len(), 32);
    let failures = seq.failures();
    assert!(
        failures.is_empty(),
        "threaded sweep found a counterexample: '{}' ({}) — {:?}",
        failures[0].schedule.name,
        failures[0].variant,
        failures[0].violations
    );
    let par = threaded_sweep(&ThreadedSweepConfig { workers: 4, ..base });
    assert_eq!(seq.to_json(), par.to_json());
}

/// Every threaded corpus entry replays with its expectations met —
/// including the cross-shard 2PC, intent-replay, group-commit-crash and
/// disk-death scenarios.
#[test]
fn threaded_corpus_replays_green() {
    let count = replay_threaded_dir(&threaded_corpus_dir())
        .unwrap_or_else(|e| panic!("threaded corpus replay failed: {e}"));
    assert!(count >= 4, "threaded corpus has shrunk to {count} entries");
}

/// The threaded checker has teeth: with the commit-time twin flip
/// compiled out, the sweep over multi-threaded schedules must find a
/// counterexample and the shrinker must reduce it.
#[test]
fn threaded_mutation_is_caught_and_shrinks() {
    let cfg = ThreadedSweepConfig {
        seed: 0x1992,
        schedules: 60,
        faults_per_schedule: 1,
        workers: 2,
        mutations: ProtocolMutations {
            skip_commit_twin_flip: true,
        },
        stop_on_failure: true,
    };
    let report = threaded_sweep(&cfg);
    let failures = report.failures();
    let first = failures
        .first()
        .expect("threaded mutation sweep found no counterexample: the runner has no teeth");
    let shrunk = shrink_threaded(&first.schedule, cfg.mutations, 400);
    assert!(
        !run_threaded(&shrunk.schedule, cfg.mutations).ok(),
        "shrunk threaded schedule no longer fails"
    );
    assert!(
        shrunk.schedule.ops.len() <= 12,
        "threaded mutation repro did not shrink below 12 ops (got {})",
        shrunk.schedule.ops.len()
    );
}

/// Threaded schedules survive the JSON round-trip exactly (shards and
/// group-commit knobs included).
#[test]
fn threaded_schedule_json_round_trips() {
    for index in 0..50 {
        let sched = generate_threaded(0xC0DE, index);
        let json = sched.to_json().to_string();
        let parsed = rda_check::Json::parse(&json)
            .unwrap_or_else(|e| panic!("emitted threaded JSON unparseable: {e}"));
        let back = ThreadedSchedule::from_json(&parsed)
            .unwrap_or_else(|e| panic!("threaded round-trip failed: {e}"));
        assert_eq!(
            back, sched,
            "threaded schedule {index} changed across the round-trip"
        );
    }
}
