//! Minimal hand-rolled JSON: a value tree, a recursive-descent parser and
//! a deterministic compact writer.
//!
//! The workspace deliberately carries no serde machinery for its reports
//! (see `rda-faults::report`); the checker needs the *reverse* direction
//! too — corpus entries are JSON files read back at replay time — so this
//! module adds the small parser the rest of the stack never needed.
//! Integers only: the corpus never stores floats, and refusing them keeps
//! round-trips byte-exact.

use std::fmt::{self, Write as _};

/// A parsed JSON value. Object keys keep their file order, so a
/// parse → write round trip is byte-identical for the writer's own
/// output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (the corpus format never stores floats).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a JSON document.
    ///
    /// # Errors
    /// Returns a human-readable message (with byte offset) on malformed
    /// input, floats, or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Object member lookup (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's keys, in source order.
    #[must_use]
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(members) => members.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// This value as an integer.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// This value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Str(s) => write!(f, "\"{}\"", escape(s)),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(members) => {
                write!(f, "{{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "\"{}\":{v}", escape(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Escape a string for embedding in a JSON document.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", char::from(byte), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b'-' | b'0'..=b'9') => parse_int(bytes, pos),
        Some(other) => Err(format!("unexpected byte 0x{other:02x} at offset {}", *pos)),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected '{word}' at byte {}", *pos))
    }
}

fn parse_int(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if matches!(bytes.get(*pos), Some(b'.' | b'e' | b'E')) {
        return Err(format!("floats are not supported (byte {})", *pos));
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<i64>()
        .map(Json::Int)
        .map_err(|e| format!("bad integer '{text}' at byte {start}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar, not one byte.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}
