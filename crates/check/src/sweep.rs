//! Seeded sweeps: many schedules, each checked golden + under sampled
//! fault points, in parallel, with a byte-deterministic report.
//!
//! Parallelism is organized so the report is a pure function of the
//! configuration *excluding* `workers`: schedules are processed in
//! fixed-size chunks (threads split one chunk, then barrier), results are
//! slotted by index, and nothing wall-clock-dependent enters the report.
//! The early-stop decision is taken only at chunk boundaries, so even
//! `stop_on_failure` sweeps run the same schedule set at any worker
//! count.

use crate::checker::{run_schedule, CheckOutcome};
use crate::generate::{fault_kind_cycle, generate, mix};
use crate::json::Json;
use crate::schedule::Schedule;
use rda_core::ProtocolMutations;
use rda_faults::{crashpoint_schedule, FaultKind};

/// Schedules per barrier chunk — fixed (never derived from `workers`) so
/// early-stop sweeps are worker-count independent.
const CHUNK: u64 = 8;

/// Sweep parameters.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Master seed; schedule `i` derives from `mix(seed, i)`.
    pub seed: u64,
    /// How many schedules to generate.
    pub schedules: u64,
    /// Sampled fault points per schedule (each cycles crash → torn write
    /// → disk death).
    pub faults_per_schedule: u64,
    /// Worker threads (≥ 1). Does not affect the report.
    pub workers: usize,
    /// Protocol mutations compiled into the engine under test.
    pub mutations: ProtocolMutations,
    /// Stop at the first chunk that produced a failure.
    pub stop_on_failure: bool,
}

impl SweepConfig {
    /// A small default sweep over `seed`.
    #[must_use]
    pub fn new(seed: u64) -> SweepConfig {
        SweepConfig {
            seed,
            schedules: 100,
            faults_per_schedule: 2,
            workers: 1,
            mutations: ProtocolMutations::default(),
            stop_on_failure: false,
        }
    }
}

/// A failing check, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Which variant failed: `golden` or `<kind>@<io>`.
    pub variant: String,
    /// The exact schedule (fault included) that failed.
    pub schedule: Schedule,
    /// The violations it produced.
    pub violations: Vec<String>,
}

/// Result of checking one generated schedule and its fault variants.
#[derive(Debug, Clone)]
pub struct ScheduleResult {
    /// Index in the sweep.
    pub index: u64,
    /// Generated schedule name.
    pub name: String,
    /// Array I/Os of the golden (fault-free) run's workload.
    pub workload_ios: u64,
    /// Differential checks executed (golden + fault variants).
    pub checks: u64,
    /// FNV digest over every check's trace + violations — the
    /// determinism witness.
    pub digest: u64,
    /// First failure, if any (remaining variants are not attempted).
    pub failure: Option<Failure>,
}

/// A whole sweep's outcome.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Master seed.
    pub seed: u64,
    /// Schedules requested.
    pub requested: u64,
    /// Were protocol mutations active?
    pub mutated: bool,
    /// Per-schedule results, in index order (may be shorter than
    /// `requested` when `stop_on_failure` tripped).
    pub results: Vec<ScheduleResult>,
}

impl SweepReport {
    /// Every failure, in schedule order.
    #[must_use]
    pub fn failures(&self) -> Vec<&Failure> {
        self.results
            .iter()
            .filter_map(|r| r.failure.as_ref())
            .collect()
    }

    /// Did every check pass?
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.results.iter().all(|r| r.failure.is_none())
    }

    /// Total differential checks executed.
    #[must_use]
    pub fn checks(&self) -> u64 {
        self.results.iter().map(|r| r.checks).sum()
    }

    /// Deterministic JSON: a pure function of the sweep configuration
    /// minus `workers` (byte-identical at any worker count).
    #[must_use]
    pub fn to_json(&self) -> String {
        let results = self
            .results
            .iter()
            .map(|r| {
                let mut members = vec![
                    ("index".to_string(), Json::Int(r.index.cast_signed())),
                    ("name".to_string(), Json::Str(r.name.clone())),
                    (
                        "workload_ios".to_string(),
                        Json::Int(r.workload_ios.cast_signed()),
                    ),
                    ("checks".to_string(), Json::Int(r.checks.cast_signed())),
                    (
                        "digest".to_string(),
                        Json::Str(format!("{:016x}", r.digest)),
                    ),
                ];
                members.push((
                    "failure".to_string(),
                    match &r.failure {
                        None => Json::Null,
                        Some(f) => Json::Obj(vec![
                            ("variant".to_string(), Json::Str(f.variant.clone())),
                            (
                                "violations".to_string(),
                                Json::Arr(
                                    f.violations.iter().map(|v| Json::Str(v.clone())).collect(),
                                ),
                            ),
                            ("schedule".to_string(), f.schedule.to_json()),
                        ]),
                    },
                ));
                Json::Obj(members)
            })
            .collect();
        Json::Obj(vec![
            ("seed".to_string(), Json::Int(self.seed.cast_signed())),
            (
                "requested".to_string(),
                Json::Int(self.requested.cast_signed()),
            ),
            ("mutated".to_string(), Json::Bool(self.mutated)),
            ("clean".to_string(), Json::Bool(self.is_clean())),
            ("checks".to_string(), Json::Int(self.checks().cast_signed())),
            ("results".to_string(), Json::Arr(results)),
        ])
        .to_string()
    }
}

/// Check one generated schedule: golden run first, then each sampled
/// fault variant until the first failure.
#[must_use]
pub fn check_index(cfg: &SweepConfig, index: u64) -> ScheduleResult {
    let base = generate(cfg.seed, index);
    let golden = run_schedule(&base, cfg.mutations);
    let mut digest = golden.digest();
    let mut checks = 1;
    let workload_ios = golden.workload_ios;
    let mut failure = fail_of(&base, "golden", &golden);

    if failure.is_none() && workload_ios > 0 && cfg.faults_per_schedule > 0 {
        // exhaustive_limit 0: always sample, never enumerate.
        let (points, _) = crashpoint_schedule(
            workload_ios,
            0,
            cfg.faults_per_schedule,
            mix(cfg.seed, index) | 1,
        );
        for (j, &k) in points.iter().enumerate() {
            // Double failure is genuine data loss, not a recovery bug: a
            // second dead disk — or a torn page in a group that already
            // lost a platter — exceeds the array's single-failure
            // guarantee. Schedules that kill a disk explicitly get only
            // crash faults planted on top.
            let mut kind = fault_kind_cycle(j);
            if base.has_fail_disk() && matches!(kind, FaultKind::FailDisk | FaultKind::TornWrite) {
                kind = FaultKind::Crash;
            }
            let variant = base.with_fault(crate::schedule::FaultPoint { kind, at_io: k });
            let outcome = run_schedule(&variant, cfg.mutations);
            digest ^= outcome.digest().rotate_left((j as u32 + 1) % 63);
            checks += 1;
            let label = variant.fault.map_or_else(
                || "golden".to_string(),
                |f| format!("{}@{}", f.kind.name(), f.at_io),
            );
            failure = fail_of(&variant, &label, &outcome);
            if failure.is_some() {
                break;
            }
        }
    }

    ScheduleResult {
        index,
        name: base.name,
        workload_ios,
        checks,
        digest,
        failure,
    }
}

fn fail_of(sched: &Schedule, variant: &str, outcome: &CheckOutcome) -> Option<Failure> {
    if outcome.ok() {
        return None;
    }
    Some(Failure {
        variant: variant.to_string(),
        schedule: sched.clone(),
        violations: outcome.violations.clone(),
    })
}

/// Run the sweep. Worker threads split each fixed-size chunk of schedule
/// indices; results land in index order regardless of scheduling.
#[must_use]
pub fn sweep(cfg: &SweepConfig) -> SweepReport {
    let mut results: Vec<ScheduleResult> = Vec::with_capacity(cfg.schedules as usize);
    let workers = cfg.workers.max(1);
    let mut next = 0;
    while next < cfg.schedules {
        let chunk: Vec<u64> = (next..(next + CHUNK).min(cfg.schedules)).collect();
        next += CHUNK;
        let mut slot_results: Vec<Option<ScheduleResult>> = vec![None; chunk.len()];
        if workers == 1 {
            for (slot, &index) in chunk.iter().enumerate() {
                slot_results[slot] = Some(check_index(cfg, index));
            }
        } else {
            let counter = std::sync::atomic::AtomicUsize::new(0);
            let slots = std::sync::Mutex::new(&mut slot_results);
            crossbeam::thread::scope(|scope| {
                for _ in 0..workers.min(chunk.len()) {
                    scope.spawn(|_| loop {
                        // ordering: Relaxed — work-queue index claim;
                        // atomicity alone guarantees each slot is taken
                        // once, and results publish via the mutex.
                        let slot = counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if slot >= chunk.len() {
                            break;
                        }
                        let result = check_index(cfg, chunk[slot]);
                        if let Ok(mut guard) = slots.lock() {
                            guard[slot] = Some(result);
                        }
                    });
                }
            })
            .unwrap_or_else(|_| unreachable!("sweep worker panicked"));
        }
        let mut tripped = false;
        for result in slot_results.into_iter().flatten() {
            tripped |= result.failure.is_some();
            results.push(result);
        }
        if cfg.stop_on_failure && tripped {
            break;
        }
    }
    SweepReport {
        seed: cfg.seed,
        requested: cfg.schedules,
        mutated: cfg.mutations.any(),
        results,
    }
}
