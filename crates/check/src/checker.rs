//! Differential execution: one schedule, real engine vs. reference model.
//!
//! [`run_schedule`] replays a [`Schedule`] on a real [`Database`] with the
//! planted fault (if any) armed through the `rda-faults` injector, while
//! stepping the [`RefModel`] in lockstep. Divergence anywhere — a read
//! returning the wrong byte, a lock conflict neither or only one side
//! predicts, recovery failing to converge, the final committed state
//! differing from the model, a parity invariant violation, or an event
//! trace that breaks the steal/commit protocol — lands in
//! [`CheckOutcome::violations`].
//!
//! Crash discipline: the injector latches on a planted crash or torn
//! write, so the first engine call to notice returns
//! `ArrayError::Crashed`. The checker then treats the machine as dead —
//! drops every live handle, power-cycles via [`Database::crash`], and
//! drives restart recovery to convergence. A planted fault can fire
//! *during* recovery too (the I/O counter keeps running), in which case
//! recovery itself crashes and is retried; the fault is spent after one
//! firing, so the loop terminates. Disk death discovered during recovery
//! is repaired by media recovery mid-loop, exactly as an operator would.

use crate::model::{Expected, RefModel};
use crate::schedule::{SchedOp, Schedule, MAX_SLOTS, PAGES};
use rda_array::ArrayError;
use rda_core::{Database, DbError, ProtocolMutations, Transaction};
use rda_faults::{FaultInjector, FaultPlan, FaultSpec};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Everything one differential run produced.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// Divergences and invariant violations; empty means the run passed.
    pub violations: Vec<String>,
    /// Physical array I/Os issued up to the end of the last schedule op
    /// (before final cleanup) — the space fault points are sampled from.
    pub workload_ios: u64,
    /// How many times the machine went down (planted faults and
    /// `CrashRestart` steps both count).
    pub crashes: u64,
    /// Did the planted fault actually fire?
    pub fault_fired: bool,
    /// The full event trace, rendered one event per line — byte-identical
    /// across replays of the same schedule.
    pub trace: String,
    /// Event names seen (with steal kinds, e.g. `Steal:logged`), for
    /// corpus `requires` assertions.
    pub events: Vec<String>,
}

impl CheckOutcome {
    /// Did the run pass?
    #[must_use]
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// FNV-1a digest over the trace and violations — a compact
    /// determinism witness.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325_u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.trace.as_bytes());
        for v in &self.violations {
            eat(v.as_bytes());
            eat(b"\n");
        }
        h
    }
}

/// What [`Run::rebuild_owed`] left behind.
enum Rebuilt {
    /// Every owed disk rebuilt.
    Done,
    /// The machine died mid-rebuild (already power-cycled); go around.
    Crashed,
    /// Rebuild failed for a non-crash reason; the run is wedged.
    Wedged,
}

/// Shared state of one replay: the live handles and the crash bookkeeping.
struct Run {
    db: Database,
    injector: Arc<FaultInjector>,
    model: RefModel,
    slots: Vec<Option<Transaction>>,
    failed_disks: BTreeSet<u16>,
    /// Trace sequence windows `(start, end)` occupied by restart recovery.
    windows: Vec<(u64, u64)>,
    violations: Vec<String>,
    crashes: u64,
    /// Set when recovery failed to converge; the replay stops.
    wedged: bool,
}

impl Run {
    fn last_seq(&self) -> u64 {
        self.db.trace_snapshot().events.last().map_or(0, |e| e.seq)
    }

    /// Is `e` the machine dying? Lower layers sometimes wrap the
    /// injector's `Crashed` refusal (e.g. a rebuild read maps it to
    /// `Unrecoverable`), so any error while the crash latch is down
    /// counts.
    fn is_crash(&self, e: &DbError) -> bool {
        matches!(e, DbError::Array(ArrayError::Crashed)) || self.injector.is_latched()
    }

    /// Rebuild every disk whose media recovery is owed. Returns what the
    /// restart loop should do next.
    fn rebuild_owed(&mut self) -> Rebuilt {
        for disk in self.failed_disks.clone() {
            match self.db.media_recover(disk) {
                Ok(_) => {
                    self.failed_disks.remove(&disk);
                }
                Err(ref e) if self.is_crash(e) => {
                    self.crashes += 1;
                    self.db.crash();
                    return Rebuilt::Crashed;
                }
                Err(e) => {
                    self.violations
                        .push(format!("media recovery of disk {disk} failed: {e}"));
                    self.wedged = true;
                    return Rebuilt::Wedged;
                }
            }
        }
        Rebuilt::Done
    }

    /// The machine is down (observed `Crashed` or an explicit
    /// `CrashRestart` step): drop all handles, power-cycle, drive restart
    /// recovery to convergence, rebuild any dead disk, and record the
    /// trace window recovery occupied.
    ///
    /// Recover first, rebuild second: restart recovery works degraded
    /// (parity undo has a twin-difference fallback that needs no sibling
    /// reads), while a rebuild with losers still riding the parity would
    /// materialize polluted blocks — the parity a rebuild reads is stale
    /// until the riders are undone. The exception is a rebuild recovery
    /// itself demands: when it must write a page of a dead disk it
    /// surfaces `DiskFailed`, and by then its undo passes have repaired
    /// any parity staleness in that disk's groups.
    ///
    /// A planted fault can fire *during* this flow too (the I/O counter
    /// keeps running through recovery and rebuild); the machine then dies
    /// again and the loop retries — the fault is spent after one firing,
    /// so the retry is clean. `failed_disks` names every disk whose
    /// rebuild is still owed: a crash mid-rebuild leaves a half-blank
    /// replacement the array no longer reports as failed, so the disk
    /// stays in the set until one `media_recover` runs to completion.
    fn crash_and_recover(&mut self) {
        self.crashes += 1;
        let start = self.last_seq() + 1;
        self.db.crash();
        // Dead handles: their Drop aborts are answered with NeedsRecovery,
        // which Drop tolerates. The transactions are losers now.
        for slot in &mut self.slots {
            *slot = None;
        }
        self.model.crash();
        'restart: for attempt in 0.. {
            if attempt >= 8 {
                self.violations
                    .push("restart recovery did not converge after 8 attempts".to_string());
                self.wedged = true;
                break;
            }
            // A disk whose rebuild a previous crash interrupted is alive
            // but half-blank, and blank blocks read as silent zeroes.
            // Re-fail it so recovery reads its groups degraded (through
            // parity) instead of trusting those zeroes.
            for disk in self.failed_disks.clone() {
                if !self.db.disk_failed(disk) {
                    self.db.fail_disk(disk);
                }
            }
            match self.db.recover() {
                Ok(_) => match self.rebuild_owed() {
                    Rebuilt::Done => break,
                    Rebuilt::Crashed => {}
                    Rebuilt::Wedged => break 'restart,
                },
                // Recovery had to write a page of a dead disk: rebuild it
                // and go around.
                Err(DbError::Array(ArrayError::DiskFailed(d))) => {
                    self.failed_disks.insert(d.0);
                    match self.rebuild_owed() {
                        Rebuilt::Done | Rebuilt::Crashed => {}
                        Rebuilt::Wedged => break 'restart,
                    }
                }
                Err(ref e) if self.is_crash(e) => {
                    self.crashes += 1;
                    self.db.crash();
                }
                Err(e) => {
                    self.violations
                        .push(format!("restart recovery failed: {e}"));
                    self.wedged = true;
                    break;
                }
            }
        }
        let end = self.last_seq();
        self.windows.push((start, end));
    }
}

/// Replay `sched` differentially. See the module docs for the discipline.
#[must_use]
pub fn run_schedule(sched: &Schedule, mutations: ProtocolMutations) -> CheckOutcome {
    let cfg = sched.knobs.config(mutations);
    let db = Database::open(cfg);
    let plan = match sched.fault {
        Some(f) => FaultPlan::single(FaultSpec::at_io(f.kind, f.at_io)),
        None => FaultPlan::empty(),
    };
    let injector = Arc::new(FaultInjector::new(plan).with_tracer(db.tracer()));
    db.install_fault_hook(Arc::clone(&injector) as Arc<dyn rda_array::FaultHook>);

    let mut run = Run {
        db,
        injector,
        model: RefModel::new(PAGES, sched.knobs.strict),
        slots: (0..MAX_SLOTS).map(|_| None).collect(),
        failed_disks: BTreeSet::new(),
        windows: Vec::new(),
        violations: Vec::new(),
        crashes: 0,
        wedged: false,
    };

    for (i, op) in sched.ops.iter().enumerate() {
        if run.wedged {
            break;
        }
        step(&mut run, i, *op);
    }
    let workload_ios = run.injector.ios_seen();
    if !run.wedged {
        finalize(&mut run);
    }

    let snap = run.db.trace_snapshot();
    if snap.dropped > 0 {
        run.violations.push(format!(
            "trace ring overflowed ({} events dropped): protocol invariants unverifiable",
            snap.dropped
        ));
    } else {
        run.violations.extend(
            rda_core::protocol_violations_windowed(&snap.events, &run.windows)
                .into_iter()
                .map(|v| format!("trace: {v}")),
        );
    }
    let mut events = Vec::with_capacity(snap.events.len());
    let mut trace = String::new();
    for ev in &snap.events {
        trace.push_str(&ev.to_string());
        trace.push('\n');
        events.push(match ev.kind {
            rda_core::EventKind::Steal { kind, .. } => format!("Steal:{}", kind.name()),
            ref kind => kind.name().to_string(),
        });
    }

    CheckOutcome {
        violations: run.violations,
        workload_ios,
        crashes: run.crashes,
        fault_fired: !run.injector.fired().is_empty(),
        trace,
        events,
    }
}

/// Execute one schedule step against both sides.
fn step(run: &mut Run, index: usize, op: SchedOp) {
    match op {
        SchedOp::Begin { slot } => {
            if run.model.is_active(slot) {
                return; // skipped: slot busy
            }
            run.slots[slot] = Some(run.db.begin());
            run.model.begin(slot);
        }
        SchedOp::Read { slot, page } => {
            if !run.model.is_active(slot) {
                return;
            }
            let got = match run.slots[slot].as_mut() {
                Some(tx) => tx.read(page),
                None => return,
            };
            match got {
                Ok(image) => match run.model.read(slot, page) {
                    Expected::Value(want) => {
                        if image.first().copied() != Some(want) {
                            run.violations.push(format!(
                                "op {index}: slot {slot} read page {page} = {:?}, model says {want}",
                                image.first()
                            ));
                        }
                    }
                    Expected::Conflict => {
                        run.violations.push(format!(
                            "op {index}: slot {slot} read page {page} succeeded, model expected a lock conflict"
                        ));
                    }
                },
                Err(DbError::LockConflict { .. }) => {
                    // The model must not register the S lock in this case:
                    // its read() has no side effect on Conflict, and we
                    // only consult it for the prediction.
                    if run.model.read(slot, page) != Expected::Conflict {
                        run.violations.push(format!(
                            "op {index}: slot {slot} read page {page} hit a lock conflict the model did not predict"
                        ));
                    }
                }
                Err(ref e) if run.is_crash(e) => run.crash_and_recover(),
                Err(e) => run.violations.push(format!(
                    "op {index}: slot {slot} read page {page} failed unexpectedly: {e}"
                )),
            }
        }
        SchedOp::Write { slot, page, val } => {
            if !run.model.is_active(slot) {
                return;
            }
            let got = match run.slots[slot].as_mut() {
                Some(tx) => tx.write(page, &[val]),
                None => return,
            };
            match got {
                Ok(()) => {
                    if run.model.write(slot, page, val) == Expected::Conflict {
                        run.violations.push(format!(
                            "op {index}: slot {slot} write page {page} succeeded, model expected a lock conflict"
                        ));
                    }
                }
                Err(DbError::LockConflict { .. }) => {
                    if run.model.write(slot, page, val) != Expected::Conflict {
                        run.violations.push(format!(
                            "op {index}: slot {slot} write page {page} hit a lock conflict the model did not predict"
                        ));
                    }
                }
                Err(ref e) if run.is_crash(e) => run.crash_and_recover(),
                Err(e) => run.violations.push(format!(
                    "op {index}: slot {slot} write page {page} failed unexpectedly: {e}"
                )),
            }
        }
        SchedOp::Commit { slot } => {
            if !run.model.is_active(slot) {
                return;
            }
            let Some(tx) = run.slots[slot].take() else {
                return;
            };
            match tx.commit() {
                // Commit acknowledged is exactly durable-commit: the log
                // force is outside the fault seam, and the twin flip is
                // zero-I/O, so Ok here obliges the engine to preserve the
                // transaction across anything that follows.
                Ok(_) => run.model.commit(slot),
                Err(ref e) if run.is_crash(e) => run.crash_and_recover(),
                Err(e) => run
                    .violations
                    .push(format!("op {index}: slot {slot} commit failed: {e}")),
            }
        }
        SchedOp::Abort { slot } => {
            if !run.model.is_active(slot) {
                return;
            }
            let Some(tx) = run.slots[slot].take() else {
                return;
            };
            match tx.abort() {
                Ok(()) => run.model.abort(slot),
                Err(ref e) if run.is_crash(e) => run.crash_and_recover(),
                Err(e) => run
                    .violations
                    .push(format!("op {index}: slot {slot} abort failed: {e}")),
            }
        }
        SchedOp::CrashRestart => run.crash_and_recover(),
        SchedOp::FailDisk { disk } => {
            if run.failed_disks.contains(&disk) || disk >= run.db.disks() {
                return;
            }
            run.db.fail_disk(disk);
            run.failed_disks.insert(disk);
        }
        SchedOp::MediaRecover { disk } => {
            if !run.failed_disks.contains(&disk) || run.db.active_transactions() > 0 {
                return; // requires quiescence; the final cleanup rebuilds
            }
            match run.db.media_recover(disk) {
                Ok(_) => {
                    run.failed_disks.remove(&disk);
                }
                Err(ref e) if run.is_crash(e) => run.crash_and_recover(),
                Err(e) => run.violations.push(format!(
                    "op {index}: media recovery of disk {disk} failed: {e}"
                )),
            }
        }
    }
}

/// End of schedule: quiesce, repair, and run every terminal oracle.
fn finalize(run: &mut Run) {
    // 1. Abort the stragglers (slot order, deterministic).
    for slot in 0..run.slots.len() {
        if run.wedged {
            return;
        }
        if let Some(tx) = run.slots[slot].take() {
            match tx.abort() {
                Ok(()) => run.model.abort(slot),
                Err(ref e) if run.is_crash(e) => run.crash_and_recover(),
                Err(e) => run
                    .violations
                    .push(format!("final abort of slot {slot} failed: {e}")),
            }
        }
    }
    // 2. Safety net: a fault that latched without any call observing it.
    if run.injector.is_latched() {
        run.crash_and_recover();
    }
    // 3. Rebuild any disk still dead so the durability oracle reads a
    //    healthy array (media recovery must restore committed state).
    let mut guard = 0;
    while !run.failed_disks.is_empty() && !run.wedged {
        guard += 1;
        if guard > 4 {
            run.violations
                .push("final disk rebuilds did not converge".to_string());
            return;
        }
        for disk in run.failed_disks.clone() {
            match run.db.media_recover(disk) {
                Ok(_) => {
                    run.failed_disks.remove(&disk);
                }
                // The crash flow redoes the owed rebuilds itself.
                Err(ref e) if run.is_crash(e) => {
                    run.crash_and_recover();
                    break;
                }
                Err(e) => {
                    run.violations
                        .push(format!("final rebuild of disk {disk} failed: {e}"));
                    return;
                }
            }
        }
    }
    if run.wedged {
        return;
    }
    // 4. Durability oracle: the committed state must equal the model's.
    match run.db.state_dump() {
        Ok(pages) => {
            for page in 0..run.model.pages() {
                let got = pages
                    .get(page as usize)
                    .and_then(|image| image.first())
                    .copied();
                let want = run.model.committed_byte(page);
                if got != Some(want) {
                    run.violations.push(format!(
                        "durability: page {page} = {got:?} after quiescence, model committed {want}"
                    ));
                }
            }
        }
        Err(e) => run
            .violations
            .push(format!("state dump failed at quiescence: {e}")),
    }
    // 5. Physical parity invariants.
    match run.db.verify() {
        Ok(list) => run
            .violations
            .extend(list.into_iter().map(|v| format!("parity: {v}"))),
        Err(e) => run.violations.push(format!("parity verify failed: {e}")),
    }
    // 6. Cross-layer audit (twins, Dirty_Set, lock/chain leaks).
    let audit = run.db.audit();
    run.violations
        .extend(audit.violations().iter().map(|v| format!("audit: {v}")));
}
