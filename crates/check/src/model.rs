//! The sequential reference model.
//!
//! A deliberately dumb in-memory re-statement of what the engine is
//! *supposed* to do, at the granularity the checker observes: one byte per
//! page (every checker write is a one-byte payload zero-padded to the page
//! size, so a page's first byte carries its whole identity).
//!
//! The model mirrors the engine's externally visible contract exactly:
//!
//! * **Committed state** survives everything — commit, abort, crash,
//!   restart, disk death, media recovery.
//! * **Current state** is what a read observes: the last write by anyone
//!   when `strict` is off (dirty reads), which strict two-phase locking
//!   makes equal to "committed or my own pending write".
//! * **Abort** restores each written page to its value at this
//!   transaction's *first* write of the page (the engine keeps a
//!   first-touch before-image per page, whether it undoes via parity,
//!   UNDO log, or buffer rollback).
//! * **Locks** copy `rda-core`'s fail-fast table: exclusive page locks
//!   for writes (blocked by a foreign X or any foreign S holder; own S
//!   upgrades), shared locks for strict reads (blocked by a foreign X
//!   only), everything released at end-of-transaction or crash.
//!
//! Anything the engine does beyond this contract — steals, parity rides,
//! twin flips, recovery passes — is invisible here by design: the
//! differential checker exists to prove those mechanisms never leak into
//! the contract.

use std::collections::{BTreeMap, BTreeSet};

/// What the model predicts for one read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expected {
    /// The operation succeeds; for a read, the page's byte value.
    Value(u8),
    /// The operation fails with a lock conflict (fail-fast, transaction
    /// stays alive and keeps its locks).
    Conflict,
}

/// Per-transaction pending state.
#[derive(Debug, Default, Clone)]
struct TxnModel {
    /// page → value the page had at this txn's first write of it.
    before: BTreeMap<u32, u8>,
}

/// The reference model. See the module docs for the contract it states.
#[derive(Debug, Clone)]
pub struct RefModel {
    strict: bool,
    committed: Vec<u8>,
    current: Vec<u8>,
    /// page → slot of the exclusive holder.
    xlocks: BTreeMap<u32, usize>,
    /// page → slots of shared holders (strict mode only).
    slocks: BTreeMap<u32, BTreeSet<usize>>,
    /// Active transactions by slot.
    live: BTreeMap<usize, TxnModel>,
}

impl RefModel {
    /// A fresh model over `pages` zero-filled pages.
    #[must_use]
    pub fn new(pages: u32, strict: bool) -> RefModel {
        RefModel {
            strict,
            committed: vec![0; pages as usize],
            current: vec![0; pages as usize],
            xlocks: BTreeMap::new(),
            slocks: BTreeMap::new(),
            live: BTreeMap::new(),
        }
    }

    /// Is `slot` running a transaction?
    #[must_use]
    pub fn is_active(&self, slot: usize) -> bool {
        self.live.contains_key(&slot)
    }

    /// Begin a transaction in `slot`. Returns false (no-op) if the slot is
    /// already active — the schedule vocabulary skips such steps.
    pub fn begin(&mut self, slot: usize) -> bool {
        if self.is_active(slot) {
            return false;
        }
        self.live.insert(slot, TxnModel::default());
        true
    }

    /// Predict a read of `page` by `slot`, acquiring the S lock it implies
    /// under strict mode. No side effect when the prediction is
    /// [`Expected::Conflict`].
    pub fn read(&mut self, slot: usize, page: u32) -> Expected {
        if self.strict {
            if let Some(&holder) = self.xlocks.get(&page) {
                if holder != slot {
                    return Expected::Conflict;
                }
            } else {
                self.slocks.entry(page).or_default().insert(slot);
            }
        }
        Expected::Value(self.current[page as usize])
    }

    /// Predict a write of `val` to `page` by `slot`, applying it (and
    /// acquiring the X lock) when it succeeds. No side effect when the
    /// prediction is [`Expected::Conflict`].
    pub fn write(&mut self, slot: usize, page: u32, val: u8) -> Expected {
        if let Some(&holder) = self.xlocks.get(&page) {
            if holder != slot {
                return Expected::Conflict;
            }
        } else {
            if let Some(readers) = self.slocks.get(&page) {
                if readers.iter().any(|&r| r != slot) {
                    return Expected::Conflict;
                }
            }
            // Upgrade: the own S entry is subsumed by the X lock.
            if let Some(readers) = self.slocks.get_mut(&page) {
                readers.remove(&slot);
                if readers.is_empty() {
                    self.slocks.remove(&page);
                }
            }
            self.xlocks.insert(page, slot);
        }
        if let Some(txn) = self.live.get_mut(&slot) {
            txn.before
                .entry(page)
                .or_insert(self.current[page as usize]);
        }
        self.current[page as usize] = val;
        Expected::Value(val)
    }

    /// Commit `slot`: its writes become durable, locks released.
    pub fn commit(&mut self, slot: usize) {
        if let Some(txn) = self.live.remove(&slot) {
            for &page in txn.before.keys() {
                self.committed[page as usize] = self.current[page as usize];
            }
        }
        self.release(slot);
    }

    /// Abort `slot`: every page it wrote reverts to its first-touch
    /// before-image, locks released.
    pub fn abort(&mut self, slot: usize) {
        if let Some(txn) = self.live.remove(&slot) {
            for (&page, &before) in &txn.before {
                self.current[page as usize] = before;
            }
        }
        self.release(slot);
    }

    /// Crash + restart recovery: every active transaction is a loser, the
    /// visible state falls back to the committed state, all locks die.
    pub fn crash(&mut self) {
        self.live.clear();
        self.xlocks.clear();
        self.slocks.clear();
        self.current.copy_from_slice(&self.committed);
    }

    /// The committed byte of `page` — the durability oracle the checker
    /// diffs the engine's state dump against.
    #[must_use]
    pub fn committed_byte(&self, page: u32) -> u8 {
        self.committed[page as usize]
    }

    /// Number of pages.
    #[must_use]
    pub fn pages(&self) -> u32 {
        self.committed.len() as u32
    }

    fn release(&mut self, slot: usize) {
        self.xlocks.retain(|_, holder| *holder != slot);
        self.slocks.retain(|_, readers| {
            readers.remove(&slot);
            !readers.is_empty()
        });
    }
}
