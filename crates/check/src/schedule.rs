//! Schedules: the checker's operation vocabulary.
//!
//! A [`Schedule`] is a fully deterministic program over a small database —
//! an interleaving of multi-transaction begin/read/write/commit/abort
//! steps, spiked with whole-machine events (crash + restart, disk death,
//! media recovery) and at most one *planted* fault point threaded through
//! the `rda-faults` I/O seam. Schedules serialize to a stable JSON shape
//! so shrunk counterexamples can be stored in the regression corpus and
//! replayed byte-for-byte later.

use crate::json::Json;
use rda_array::{ArrayConfig, Organization};
use rda_core::{
    CheckpointPolicy, DbConfig, EngineKind, EotPolicy, LogGranularity, ProtocolMutations,
};
use rda_faults::FaultKind;

/// Transaction slots a schedule may address. Slots are *roles*, not
/// transaction ids: a slot can be re-begun after its transaction finished
/// or died in a crash, starting a fresh transaction in the same role.
pub const MAX_SLOTS: usize = 6;

/// Parity groups in the checker's database (rotated parity, `n = 4`,
/// 4 groups → 16 data pages). Small enough that seeded schedules collide
/// on groups constantly, which is where the steal/twin protocol lives.
pub const PAGES: u32 = 16;

/// One step of a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedOp {
    /// Start a transaction in `slot` (skipped if the slot is active).
    Begin {
        /// Target transaction slot.
        slot: usize,
    },
    /// Read a page in `slot` (skipped if the slot is not active).
    Read {
        /// Target transaction slot.
        slot: usize,
        /// Page to read.
        page: u32,
    },
    /// Overwrite a page in `slot` with a one-byte payload (zero-padded to
    /// the page size; skipped if the slot is not active).
    Write {
        /// Target transaction slot.
        slot: usize,
        /// Page to overwrite.
        page: u32,
        /// Payload byte (the page's first byte after the write).
        val: u8,
    },
    /// Commit `slot` (skipped if the slot is not active).
    Commit {
        /// Target transaction slot.
        slot: usize,
    },
    /// Abort `slot` (skipped if the slot is not active).
    Abort {
        /// Target transaction slot.
        slot: usize,
    },
    /// Power-cycle the machine: crash, then run restart recovery. Active
    /// transactions die as losers.
    CrashRestart,
    /// Fail a whole disk; the workload continues in degraded mode
    /// (skipped if the disk is already dead).
    FailDisk {
        /// Disk to kill.
        disk: u16,
    },
    /// Rebuild a failed disk from the survivors (skipped if the disk is
    /// alive or transactions are active — media recovery requires
    /// quiescence).
    MediaRecover {
        /// Disk to rebuild.
        disk: u16,
    },
}

impl SchedOp {
    /// The transaction slot this op addresses, if any.
    #[must_use]
    pub fn slot(&self) -> Option<usize> {
        match *self {
            SchedOp::Begin { slot }
            | SchedOp::Read { slot, .. }
            | SchedOp::Write { slot, .. }
            | SchedOp::Commit { slot }
            | SchedOp::Abort { slot } => Some(slot),
            _ => None,
        }
    }
}

/// A planted fault: fire `kind` on the `at_io`-th physical array I/O
/// (1-based, global across disks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPoint {
    /// What goes wrong (crash, torn write, or whole-disk death).
    pub kind: FaultKind,
    /// Which global I/O it hits.
    pub at_io: u64,
}

/// The database knobs a schedule varies. Everything else is pinned to the
/// checker's standard small configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbKnobs {
    /// Buffer frames (small values force steals mid-transaction).
    pub frames: usize,
    /// FORCE (true) or ¬FORCE (false) end-of-transaction policy.
    pub force: bool,
    /// Strict two-phase read locks (serializable) vs. dirty reads.
    pub strict: bool,
}

impl DbKnobs {
    /// Materialize the full [`DbConfig`] for this knob setting, with the
    /// given protocol mutations compiled in.
    #[must_use]
    pub fn config(&self, mutations: ProtocolMutations) -> DbConfig {
        DbConfig {
            engine: EngineKind::Rda,
            array: ArrayConfig::new(Organization::RotatedParity, 4, 4)
                .twin(true)
                .page_size(64),
            buffer: rda_buffer_config(self.frames),
            log: rda_wal::LogConfig {
                page_size: 256,
                copies: 2,
                amortized: false,
            },
            granularity: LogGranularity::Page,
            eot: if self.force {
                EotPolicy::Force
            } else {
                EotPolicy::NoForce
            },
            checkpoint: CheckpointPolicy::Manual,
            strict_read_locks: self.strict,
            trace_events: 1 << 15,
            span_events: false,
            mutations,
            shards: 1,
            group_commit: None,
        }
    }
}

fn rda_buffer_config(frames: usize) -> rda_buffer::BufferConfig {
    rda_buffer::BufferConfig {
        frames,
        steal: true,
        policy: rda_buffer::ReplacePolicy::Clock,
    }
}

/// A complete, self-describing checker input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Human-readable name (seed + index for generated schedules, a
    /// scenario slug for corpus entries).
    pub name: String,
    /// Database knobs this schedule runs under.
    pub knobs: DbKnobs,
    /// The steps, executed in order.
    pub ops: Vec<SchedOp>,
    /// At most one planted fault.
    pub fault: Option<FaultPoint>,
}

impl Schedule {
    /// A copy of this schedule with `fault` planted (replacing any
    /// existing fault) and the fault appended to the name.
    #[must_use]
    pub fn with_fault(&self, fault: FaultPoint) -> Schedule {
        Schedule {
            name: format!("{}+{}@{}", self.name, fault.kind.name(), fault.at_io),
            knobs: self.knobs,
            ops: self.ops.clone(),
            fault: Some(fault),
        }
    }

    /// Does any step kill a disk explicitly?
    #[must_use]
    pub fn has_fail_disk(&self) -> bool {
        self.ops
            .iter()
            .any(|op| matches!(op, SchedOp::FailDisk { .. }))
    }

    /// The distinct transaction slots this schedule addresses, ascending.
    #[must_use]
    pub fn slots(&self) -> Vec<usize> {
        let mut slots: Vec<usize> = self.ops.iter().filter_map(SchedOp::slot).collect();
        slots.sort_unstable();
        slots.dedup();
        slots
    }

    /// Serialize to the stable corpus JSON shape.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("name".to_string(), Json::Str(self.name.clone())),
            (
                "config".to_string(),
                Json::Obj(vec![
                    (
                        "frames".to_string(),
                        Json::Int(i64::try_from(self.knobs.frames).unwrap_or(i64::MAX)),
                    ),
                    (
                        "eot".to_string(),
                        Json::Str(if self.knobs.force { "force" } else { "noforce" }.to_string()),
                    ),
                    ("strict".to_string(), Json::Bool(self.knobs.strict)),
                ]),
            ),
            (
                "ops".to_string(),
                Json::Arr(self.ops.iter().map(op_to_json).collect()),
            ),
        ];
        members.push((
            "fault".to_string(),
            match self.fault {
                Some(f) => Json::Obj(vec![
                    ("mode".to_string(), Json::Str(f.kind.name().to_string())),
                    ("at_io".to_string(), Json::Int(f.at_io.cast_signed())),
                ]),
                None => Json::Null,
            },
        ));
        Json::Obj(members)
    }

    /// Deserialize from the corpus JSON shape.
    ///
    /// # Errors
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(value: &Json) -> Result<Schedule, String> {
        let name = value
            .get("name")
            .and_then(Json::as_str)
            .ok_or("schedule missing 'name'")?
            .to_string();
        let config = value.get("config").ok_or("schedule missing 'config'")?;
        let frames = config
            .get("frames")
            .and_then(Json::as_u64)
            .ok_or("config missing 'frames'")? as usize;
        let force = match config.get("eot").and_then(Json::as_str) {
            Some("force") => true,
            Some("noforce") => false,
            other => return Err(format!("config 'eot' must be force|noforce, got {other:?}")),
        };
        let strict = config
            .get("strict")
            .and_then(Json::as_bool)
            .ok_or("config missing 'strict'")?;
        let ops = value
            .get("ops")
            .and_then(Json::as_arr)
            .ok_or("schedule missing 'ops'")?
            .iter()
            .map(op_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let fault = match value.get("fault") {
            None | Some(Json::Null) => None,
            Some(f) => {
                let kind = match f.get("mode").and_then(Json::as_str) {
                    Some("crash") => FaultKind::Crash,
                    Some("torn_write") => FaultKind::TornWrite,
                    Some("fail_disk") => FaultKind::FailDisk,
                    other => return Err(format!("bad fault mode {other:?}")),
                };
                let at_io = f
                    .get("at_io")
                    .and_then(Json::as_u64)
                    .ok_or("fault missing 'at_io'")?;
                Some(FaultPoint { kind, at_io })
            }
        };
        Ok(Schedule {
            name,
            knobs: DbKnobs {
                frames,
                force,
                strict,
            },
            ops,
            fault,
        })
    }
}

pub(crate) fn op_to_json(op: &SchedOp) -> Json {
    let mut members = Vec::with_capacity(4);
    let tag = |s: &str| Json::Str(s.to_string());
    match *op {
        SchedOp::Begin { slot } => {
            members.push(("op".to_string(), tag("begin")));
            members.push((
                "slot".to_string(),
                Json::Int(i64::try_from(slot).unwrap_or(i64::MAX)),
            ));
        }
        SchedOp::Read { slot, page } => {
            members.push(("op".to_string(), tag("read")));
            members.push((
                "slot".to_string(),
                Json::Int(i64::try_from(slot).unwrap_or(i64::MAX)),
            ));
            members.push(("page".to_string(), Json::Int(i64::from(page))));
        }
        SchedOp::Write { slot, page, val } => {
            members.push(("op".to_string(), tag("write")));
            members.push((
                "slot".to_string(),
                Json::Int(i64::try_from(slot).unwrap_or(i64::MAX)),
            ));
            members.push(("page".to_string(), Json::Int(i64::from(page))));
            members.push(("val".to_string(), Json::Int(i64::from(val))));
        }
        SchedOp::Commit { slot } => {
            members.push(("op".to_string(), tag("commit")));
            members.push((
                "slot".to_string(),
                Json::Int(i64::try_from(slot).unwrap_or(i64::MAX)),
            ));
        }
        SchedOp::Abort { slot } => {
            members.push(("op".to_string(), tag("abort")));
            members.push((
                "slot".to_string(),
                Json::Int(i64::try_from(slot).unwrap_or(i64::MAX)),
            ));
        }
        SchedOp::CrashRestart => {
            members.push(("op".to_string(), tag("crash_restart")));
        }
        SchedOp::FailDisk { disk } => {
            members.push(("op".to_string(), tag("fail_disk")));
            members.push(("disk".to_string(), Json::Int(i64::from(disk))));
        }
        SchedOp::MediaRecover { disk } => {
            members.push(("op".to_string(), tag("media_recover")));
            members.push(("disk".to_string(), Json::Int(i64::from(disk))));
        }
    }
    Json::Obj(members)
}

pub(crate) fn op_from_json(value: &Json) -> Result<SchedOp, String> {
    let slot = || {
        value
            .get("slot")
            .and_then(Json::as_u64)
            .map(|s| s as usize)
            .filter(|&s| s < MAX_SLOTS)
            .ok_or_else(|| format!("op missing valid 'slot' (< {MAX_SLOTS})"))
    };
    let page = || {
        value
            .get("page")
            .and_then(Json::as_u64)
            .map(|p| p as u32)
            .ok_or("op missing 'page'")
    };
    let disk = || {
        value
            .get("disk")
            .and_then(Json::as_u64)
            .map(|d| d as u16)
            .ok_or("op missing 'disk'")
    };
    match value.get("op").and_then(Json::as_str) {
        Some("begin") => Ok(SchedOp::Begin { slot: slot()? }),
        Some("read") => Ok(SchedOp::Read {
            slot: slot()?,
            page: page()?,
        }),
        Some("write") => Ok(SchedOp::Write {
            slot: slot()?,
            page: page()?,
            val: value
                .get("val")
                .and_then(Json::as_u64)
                .map(|v| v as u8)
                .ok_or("write op missing 'val'")?,
        }),
        Some("commit") => Ok(SchedOp::Commit { slot: slot()? }),
        Some("abort") => Ok(SchedOp::Abort { slot: slot()? }),
        Some("crash_restart") => Ok(SchedOp::CrashRestart),
        Some("fail_disk") => Ok(SchedOp::FailDisk { disk: disk()? }),
        Some("media_recover") => Ok(SchedOp::MediaRecover { disk: disk()? }),
        other => Err(format!("unknown op tag {other:?}")),
    }
}
