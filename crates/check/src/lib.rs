//! # rda-check — model-based differential checking
//!
//! The recovery stack's adversarial conscience. Everything else in this
//! workspace tests the engine against *hand-written expectations*; this
//! crate tests it against a machine-checkable statement of its contract:
//!
//! 1. A **sequential reference model** ([`RefModel`]) states what
//!    committed/visible state and lock behavior must look like, one byte
//!    per page — deliberately too simple to share bugs with the engine.
//! 2. A **seeded generator** ([`generate`]) produces multi-transaction
//!    interleavings of begin/read/write/commit/abort spiked with
//!    crash-restarts, disk deaths and media recoveries, plus planted
//!    fault points (crash / torn write / disk death at a chosen physical
//!    I/O) threaded through the `rda-faults` injector seam.
//! 3. A **differential checker** ([`run_schedule`]) replays each schedule
//!    on a real [`Database`](rda_core::Database) and the model in
//!    lockstep, drives restart + media recovery after every machine
//!    death, then diffs the quiesced state dump against the model and
//!    validates the event trace against the steal/commit protocol
//!    invariants shared with `rda-obs`.
//! 4. A **shrinker** ([`shrink`]) delta-debugs any counterexample down to
//!    a minimal, deterministically-failing schedule, and the **corpus**
//!    ([`corpus`]) stores such repros as JSON for replay in CI forever
//!    after.
//! 5. A **threaded runner** ([`run_threaded`]) replays the same
//!    vocabulary against the *sharded* engine ([`rda_core::ShardedDb`])
//!    with one OS thread per transaction slot, dispatched turn-based so
//!    the run stays deterministic; cross-shard 2PC commits interrupted
//!    by a crash are resolved through the recovery-reported intent
//!    replays. Its sweep ([`threaded_sweep`]), shrinker
//!    ([`shrink_threaded`]) and corpus (`corpus-threaded/`) mirror the
//!    sequential ones.
//!
//! The checker's teeth are proved by mutation: compile a protocol
//! mutation into the engine
//! ([`ProtocolMutations`](rda_core::ProtocolMutations), e.g. skip the
//! commit-time twin flip) and the sweep must find and shrink a
//! counterexample within a few dozen schedules — see the crate tests and
//! `cargo run -p rda-check -- --smoke`.

mod checker;
mod generate;
mod json;
mod model;
mod schedule;
mod shrink;
mod sweep;
mod threaded;

pub mod corpus;

pub use checker::{run_schedule, CheckOutcome};
// The mutation knob rides along so checker users need no direct
// `rda-core` import to arm it.
pub use generate::{fault_kind_cycle, fault_variant, generate, mix, Rng};
pub use json::{escape, Json};
pub use model::{Expected, RefModel};
pub use rda_core::ProtocolMutations;
pub use schedule::{DbKnobs, FaultPoint, SchedOp, Schedule, MAX_SLOTS, PAGES};
pub use shrink::{shrink, ShrinkOutcome};
pub use sweep::{check_index, sweep, Failure, ScheduleResult, SweepConfig, SweepReport};
pub use threaded::{
    check_threaded_index, generate_threaded, load_threaded_dir, replay_threaded_dir, run_threaded,
    shrink_threaded, threaded_corpus_dir, threaded_sweep, ShrinkThreadedOutcome,
    ThreadedCorpusEntry, ThreadedFailure, ThreadedKnobs, ThreadedReport, ThreadedResult,
    ThreadedSchedule, ThreadedSweepConfig,
};
