//! Concurrent schedules: the checker grown real threads.
//!
//! A [`ThreadedSchedule`] is the same seeded interleaving vocabulary as
//! [`Schedule`](crate::Schedule), executed against the **sharded engine**
//! ([`ShardedDb`]) with every transaction slot owned by its own OS
//! thread. The interleaving is replayed *turn-based*: the coordinator
//! dispatches one op at a time to the owning slot's thread and waits for
//! its reply before dispatching the next, so the total order of
//! engine-visible operations is exactly the schedule's op order — which
//! is what makes the run deterministic (byte-identical traces, digests,
//! and sweep reports at any worker count) while still crossing real
//! thread boundaries on every operation: transaction handles live on
//! their threads, lock conflicts happen between threads, and commits run
//! the group-commit gate from a thread that is not the opener's.
//!
//! The oracle is the same sequential [`RefModel`], stepped by the
//! coordinator in the dispatch order. The one genuinely
//! interleaving-dependent verdict — a cross-shard commit interrupted by
//! a crash — is resolved through the engine's own 2PC decision record:
//! [`ShardedDb::recover_sequential`] reports the global ids whose
//! staged intents it replayed, and the coordinator commits exactly those
//! transactions model-side before declaring the crash (everything else
//! in flight is a loser, same as the sequential checker).

use crate::checker::CheckOutcome;
use crate::generate::{fault_kind_cycle, mix, Rng};
use crate::json::Json;
use crate::model::{Expected, RefModel};
use crate::schedule::{op_from_json, op_to_json, FaultPoint, SchedOp, MAX_SLOTS, PAGES};
use rda_array::ArrayError;
use rda_core::{
    CheckpointPolicy, DbConfig, DbError, EngineKind, EotPolicy, GroupCommit, LogGranularity,
    ProtocolMutations, ShardedDb, ShardedTxn,
};
use rda_faults::{crashpoint_schedule, FaultInjector, FaultKind, FaultPlan, FaultSpec};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::sync::mpsc;
use std::sync::Arc;

/// The knobs a threaded schedule varies on top of [`DbKnobs`]
/// (crate::DbKnobs): shard count and the group-commit gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadedKnobs {
    /// Buffer frames per shard.
    pub frames: usize,
    /// FORCE (true) or ¬FORCE (false) end-of-transaction policy.
    pub force: bool,
    /// Strict two-phase read locks.
    pub strict: bool,
    /// Engine shards (1 ≤ shards ≤ 4 on the checker's 4-group array).
    pub shards: u32,
    /// Commit through the group-commit gate?
    pub group_commit: bool,
}

impl ThreadedKnobs {
    /// Materialize the full [`DbConfig`]: the checker's standard small
    /// geometry (rotated parity, n = 4, 4 groups, 16 pages) plus this
    /// knob setting. The gate window is kept tiny — under turn-based
    /// dispatch every batch has one member, so the window is pure
    /// leader-path latency.
    #[must_use]
    pub fn config(&self, mutations: ProtocolMutations) -> DbConfig {
        DbConfig {
            engine: EngineKind::Rda,
            array: rda_array::ArrayConfig::new(rda_array::Organization::RotatedParity, 4, 4)
                .twin(true)
                .page_size(64),
            buffer: rda_buffer::BufferConfig {
                frames: self.frames,
                steal: true,
                policy: rda_buffer::ReplacePolicy::Clock,
            },
            log: rda_wal::LogConfig {
                page_size: 256,
                copies: 2,
                amortized: false,
            },
            granularity: LogGranularity::Page,
            eot: if self.force {
                EotPolicy::Force
            } else {
                EotPolicy::NoForce
            },
            checkpoint: CheckpointPolicy::Manual,
            strict_read_locks: self.strict,
            trace_events: 1 << 15,
            span_events: false,
            mutations,
            shards: self.shards,
            group_commit: self.group_commit.then_some(GroupCommit {
                window_micros: 50,
                max_batch: 8,
            }),
        }
    }
}

/// A complete threaded checker input: slot = thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadedSchedule {
    /// Human-readable name.
    pub name: String,
    /// Knobs (shards, gate, and the sequential trio).
    pub knobs: ThreadedKnobs,
    /// The interleaving: ops in dispatch order, each executed on the
    /// owning slot's thread.
    pub ops: Vec<SchedOp>,
    /// At most one planted fault (global I/O numbering — the injector is
    /// shared across shards, so the billed clock is machine-wide).
    pub fault: Option<FaultPoint>,
}

impl ThreadedSchedule {
    /// A copy with `fault` planted and the fault appended to the name.
    #[must_use]
    pub fn with_fault(&self, fault: FaultPoint) -> ThreadedSchedule {
        ThreadedSchedule {
            name: format!("{}+{}@{}", self.name, fault.kind.name(), fault.at_io),
            knobs: self.knobs,
            ops: self.ops.clone(),
            fault: Some(fault),
        }
    }

    /// Does any step kill a disk explicitly?
    #[must_use]
    pub fn has_fail_disk(&self) -> bool {
        self.ops
            .iter()
            .any(|op| matches!(op, SchedOp::FailDisk { .. }))
    }

    /// The distinct transaction slots (= threads) addressed, ascending.
    #[must_use]
    pub fn slots(&self) -> Vec<usize> {
        let mut slots: Vec<usize> = self.ops.iter().filter_map(SchedOp::slot).collect();
        slots.sort_unstable();
        slots.dedup();
        slots
    }

    /// Serialize to the stable corpus JSON shape (the sequential shape
    /// plus `shards` and `group_commit` in `config`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".to_string(), Json::Str(self.name.clone())),
            (
                "config".to_string(),
                Json::Obj(vec![
                    (
                        "frames".to_string(),
                        Json::Int(i64::try_from(self.knobs.frames).unwrap_or(i64::MAX)),
                    ),
                    (
                        "eot".to_string(),
                        Json::Str(if self.knobs.force { "force" } else { "noforce" }.to_string()),
                    ),
                    ("strict".to_string(), Json::Bool(self.knobs.strict)),
                    (
                        "shards".to_string(),
                        Json::Int(i64::from(self.knobs.shards)),
                    ),
                    (
                        "group_commit".to_string(),
                        Json::Bool(self.knobs.group_commit),
                    ),
                ]),
            ),
            (
                "ops".to_string(),
                Json::Arr(self.ops.iter().map(op_to_json).collect()),
            ),
            (
                "fault".to_string(),
                match self.fault {
                    Some(f) => Json::Obj(vec![
                        ("mode".to_string(), Json::Str(f.kind.name().to_string())),
                        ("at_io".to_string(), Json::Int(f.at_io.cast_signed())),
                    ]),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// Deserialize from the corpus JSON shape.
    ///
    /// # Errors
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(value: &Json) -> Result<ThreadedSchedule, String> {
        let name = value
            .get("name")
            .and_then(Json::as_str)
            .ok_or("threaded schedule missing 'name'")?
            .to_string();
        let config = value.get("config").ok_or("schedule missing 'config'")?;
        let frames = config
            .get("frames")
            .and_then(Json::as_u64)
            .ok_or("config missing 'frames'")? as usize;
        let force = match config.get("eot").and_then(Json::as_str) {
            Some("force") => true,
            Some("noforce") => false,
            other => return Err(format!("config 'eot' must be force|noforce, got {other:?}")),
        };
        let strict = config
            .get("strict")
            .and_then(Json::as_bool)
            .ok_or("config missing 'strict'")?;
        let shards = config
            .get("shards")
            .and_then(Json::as_u64)
            .filter(|&s| (1..=u64::from(PAGES / 4)).contains(&s))
            .ok_or("config missing valid 'shards'")? as u32;
        let group_commit = config
            .get("group_commit")
            .and_then(Json::as_bool)
            .ok_or("config missing 'group_commit'")?;
        let ops = value
            .get("ops")
            .and_then(Json::as_arr)
            .ok_or("schedule missing 'ops'")?
            .iter()
            .map(op_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let fault = match value.get("fault") {
            None | Some(Json::Null) => None,
            Some(f) => {
                let kind = match f.get("mode").and_then(Json::as_str) {
                    Some("crash") => FaultKind::Crash,
                    Some("torn_write") => FaultKind::TornWrite,
                    Some("fail_disk") => FaultKind::FailDisk,
                    other => return Err(format!("bad fault mode {other:?}")),
                };
                let at_io = f
                    .get("at_io")
                    .and_then(Json::as_u64)
                    .ok_or("fault missing 'at_io'")?;
                Some(FaultPoint { kind, at_io })
            }
        };
        Ok(ThreadedSchedule {
            name,
            knobs: ThreadedKnobs {
                frames,
                force,
                strict,
                shards,
                group_commit,
            },
            ops,
            fault,
        })
    }
}

/// Command dispatched to a slot's worker thread (one at a time).
enum Cmd {
    Begin,
    Read(u32),
    Write(u32, u8),
    Commit,
    Abort,
    /// Machine died: drop the transaction handle without reporting its
    /// abort outcome (best-effort, errors tolerated, same as the
    /// sequential checker's dead handles).
    DropTxn,
}

/// A worker thread's reply to one command.
enum Reply {
    /// Begin done; the new transaction's global id.
    Begun(u64),
    /// Read done; first byte of the image.
    Value(Option<u8>),
    /// Write/abort/drop done.
    Done,
    /// Commit acknowledged; did the transaction span multiple shards?
    Committed { cross: bool },
    /// Fail-fast lock conflict (transaction alive).
    Conflict,
    /// The machine died under this op.
    Crashed,
    /// Any other error.
    Error(String),
}

/// One slot's worker loop: owns the slot's [`ShardedTxn`] and executes
/// commands against the shared database. All waiting happens in the
/// coordinator; the worker only ever has one command in flight.
fn worker(
    db: &ShardedDb,
    rx: &mpsc::Receiver<Cmd>,
    tx: &mpsc::Sender<(usize, Reply)>,
    slot: usize,
) {
    let mut txn: Option<ShardedTxn> = None;
    let reply_of = |e: DbError| match e {
        DbError::LockConflict { .. } => Reply::Conflict,
        DbError::Array(ArrayError::Crashed) => Reply::Crashed,
        // A decided cross-shard commit interrupted by the machine dying:
        // the crash is the machine event to handle here; the decision
        // itself is resolved against the replayed-intent list after
        // recovery (see crash_and_recover).
        DbError::CommitInDoubt { ref cause, .. }
            if matches!(**cause, DbError::Array(ArrayError::Crashed)) =>
        {
            Reply::Crashed
        }
        other => Reply::Error(other.to_string()),
    };
    while let Ok(cmd) = rx.recv() {
        let reply = match cmd {
            Cmd::Begin => {
                let t = db.begin();
                let gid = t.id();
                txn = Some(t);
                Reply::Begun(gid)
            }
            Cmd::Read(page) => match txn.as_mut() {
                Some(t) => match t.read(page) {
                    Ok(image) => Reply::Value(image.first().copied()),
                    Err(e) => reply_of(e),
                },
                None => Reply::Done,
            },
            Cmd::Write(page, val) => match txn.as_mut() {
                Some(t) => match t.write(page, &[val]) {
                    Ok(()) => Reply::Done,
                    Err(e) => reply_of(e),
                },
                None => Reply::Done,
            },
            Cmd::Commit => match txn.take() {
                Some(t) => {
                    let cross = t.shards_touched().len() > 1;
                    match t.commit() {
                        Ok(_) => Reply::Committed { cross },
                        Err(e) => reply_of(e),
                    }
                }
                None => Reply::Done,
            },
            Cmd::Abort => match txn.take() {
                Some(t) => match t.abort() {
                    Ok(()) => Reply::Done,
                    Err(e) => reply_of(e),
                },
                None => Reply::Done,
            },
            Cmd::DropTxn => {
                txn = None;
                Reply::Done
            }
        };
        if tx.send((slot, reply)).is_err() {
            break;
        }
    }
}

/// Coordinator-side state of one threaded replay.
struct TRun {
    db: ShardedDb,
    injector: Arc<FaultInjector>,
    model: RefModel,
    /// Per-slot global transaction ids (None = slot idle).
    slot_gids: Vec<Option<u64>>,
    failed_disks: BTreeSet<u16>,
    /// Per-shard trace windows occupied by restart recovery.
    windows: Vec<Vec<(u64, u64)>>,
    /// Synthetic event tokens (cross-shard commits, intent replays) for
    /// corpus `requires` assertions.
    extra_events: Vec<String>,
    violations: Vec<String>,
    crashes: u64,
    wedged: bool,
}

/// The per-run thread fabric: one command channel per slot, one shared
/// reply channel.
struct Fabric {
    cmd: Vec<Option<mpsc::Sender<Cmd>>>,
    reply: mpsc::Receiver<(usize, Reply)>,
}

impl Fabric {
    /// Dispatch `cmd` to `slot`'s thread and wait for its reply — the
    /// turn-based token pass that makes the run deterministic.
    fn call(&self, slot: usize, cmd: Cmd) -> Reply {
        let Some(tx) = self.cmd[slot].as_ref() else {
            return Reply::Done;
        };
        if tx.send(cmd).is_err() {
            return Reply::Error("worker thread gone".to_string());
        }
        match self.reply.recv() {
            Ok((from, reply)) => {
                debug_assert_eq!(from, slot, "turn-based: replies arrive in dispatch order");
                reply
            }
            Err(_) => Reply::Error("worker thread gone".to_string()),
        }
    }
}

impl TRun {
    fn shard_last_seq(&self, s: u32) -> u64 {
        self.db
            .shard(s)
            .trace_snapshot()
            .events
            .last()
            .map_or(0, |e| e.seq)
    }

    /// Any error while the injector's crash latch is down is the machine
    /// dying (lower layers sometimes wrap the refusal).
    fn is_crash_reply(&self, reply: &Reply) -> bool {
        matches!(reply, Reply::Crashed) || self.injector.is_latched()
    }

    /// Mark every disk the array itself reports failed (a planted
    /// disk-death fault kills a disk without telling the coordinator
    /// which one).
    fn scan_failed_disks(&mut self) {
        let per = self.db.disks_per_shard();
        for s in 0..self.db.shard_count() {
            for local in 0..per {
                if self.db.shard(s).disk_failed(local) {
                    self.failed_disks.insert(s as u16 * per + local);
                }
            }
        }
    }

    /// Rebuild every disk whose media recovery is owed. Ok(false) means
    /// the machine died mid-rebuild (already power-cycled); Err = wedged.
    fn rebuild_owed(&mut self) -> Result<bool, ()> {
        for disk in self.failed_disks.clone() {
            match self.db.media_recover(disk) {
                Ok(_) => {
                    self.failed_disks.remove(&disk);
                }
                Err(ref e) if self.is_crash_err(e) => {
                    self.crashes += 1;
                    self.db.crash();
                    return Ok(false);
                }
                Err(e) => {
                    self.violations
                        .push(format!("media recovery of disk {disk} failed: {e}"));
                    self.wedged = true;
                    return Err(());
                }
            }
        }
        Ok(true)
    }

    fn is_crash_err(&self, e: &DbError) -> bool {
        matches!(e, DbError::Array(ArrayError::Crashed)) || self.injector.is_latched()
    }

    /// The machine is down: drop every slot's handle (on its own
    /// thread), power-cycle, drive deterministic sequential recovery to
    /// convergence, resolve in-flight cross-shard commits through the
    /// replayed-intent list, and fold the crash into the model.
    fn crash_and_recover(&mut self, fabric: &Fabric) {
        self.crashes += 1;
        let starts: Vec<u64> = (0..self.db.shard_count())
            .map(|s| self.shard_last_seq(s) + 1)
            .collect();
        self.db.crash();
        for slot in 0..self.slot_gids.len() {
            if self.slot_gids[slot].is_some() {
                let _ = fabric.call(slot, Cmd::DropTxn);
            }
        }
        let mut replayed: Vec<u64> = Vec::new();
        'restart: for attempt in 0.. {
            if attempt >= 8 {
                self.violations
                    .push("restart recovery did not converge after 8 attempts".to_string());
                self.wedged = true;
                break;
            }
            // Re-fail half-blank disks from an interrupted rebuild so
            // recovery reads their groups degraded, not as silent zeroes.
            for disk in self.failed_disks.clone() {
                if !self.db.disk_failed(disk) {
                    self.db.fail_disk(disk);
                }
            }
            match self.db.recover_sequential() {
                Ok(rec) => {
                    replayed.extend(rec.replayed);
                    match self.rebuild_owed() {
                        Ok(true) => break,
                        Ok(false) => {}
                        Err(()) => break 'restart,
                    }
                }
                // Recovery had to write a page of a dead disk: find and
                // rebuild it, then go around.
                Err(DbError::Array(ArrayError::DiskFailed(_))) => {
                    self.scan_failed_disks();
                    match self.rebuild_owed() {
                        Ok(_) => {}
                        Err(()) => break 'restart,
                    }
                }
                Err(ref e) if self.is_crash_err(e) => {
                    self.crashes += 1;
                    self.db.crash();
                }
                Err(e) => {
                    self.violations
                        .push(format!("restart recovery failed: {e}"));
                    self.wedged = true;
                    break;
                }
            }
        }
        // The per-txn commit oracle for the interleaving-dependent case:
        // a cross-shard commit interrupted mid-apply was *decided* (its
        // intent was staged), and recovery has now applied it everywhere
        // — so it commits model-side. Everything else in flight is a
        // loser.
        for gid in replayed {
            if let Some(slot) = self.slot_gids.iter().position(|g| *g == Some(gid)) {
                self.model.commit(slot);
                self.extra_events.push("IntentReplayed".to_string());
            }
        }
        self.model.crash();
        for gid in &mut self.slot_gids {
            *gid = None;
        }
        for (s, start) in starts.iter().enumerate() {
            let end = self.shard_last_seq(s as u32);
            self.windows[s].push((*start, end));
        }
    }
}

/// Replay `sched` against the sharded engine with one thread per slot.
/// See the module docs for the turn-based discipline.
#[must_use]
pub fn run_threaded(sched: &ThreadedSchedule, mutations: ProtocolMutations) -> CheckOutcome {
    let cfg = sched.knobs.config(mutations);
    let db = ShardedDb::open(cfg);
    let plan = match sched.fault {
        Some(f) => FaultPlan::single(FaultSpec::at_io(f.kind, f.at_io)),
        None => FaultPlan::empty(),
    };
    let injector = Arc::new(FaultInjector::new(plan));
    db.install_fault_hook(Arc::clone(&injector) as Arc<dyn rda_array::FaultHook>);

    let shard_count = db.shard_count();
    let mut run = TRun {
        db,
        injector,
        model: RefModel::new(PAGES, sched.knobs.strict),
        slot_gids: vec![None; MAX_SLOTS],
        failed_disks: BTreeSet::new(),
        windows: vec![Vec::new(); shard_count as usize],
        extra_events: Vec::new(),
        violations: Vec::new(),
        crashes: 0,
        wedged: false,
    };

    let slots = sched.slots();
    let (reply_tx, reply_rx) = mpsc::channel();
    let mut cmd_txs: Vec<Option<mpsc::Sender<Cmd>>> = (0..MAX_SLOTS).map(|_| None).collect();
    let workload_ios = std::thread::scope(|scope| {
        for &slot in &slots {
            let (tx, rx) = mpsc::channel();
            cmd_txs[slot] = Some(tx);
            let db = run.db.clone();
            let reply = reply_tx.clone();
            scope.spawn(move || worker(&db, &rx, &reply, slot));
        }
        let fabric = Fabric {
            cmd: cmd_txs,
            reply: reply_rx,
        };
        for (i, op) in sched.ops.iter().enumerate() {
            if run.wedged {
                break;
            }
            step(&mut run, &fabric, i, *op);
        }
        let ios = run.injector.ios_seen();
        if !run.wedged {
            finalize(&mut run, &fabric);
        }
        // Dropping the fabric closes every command channel; workers exit.
        ios
    });

    // Per-shard protocol invariants, each shard's recovery windows
    // excluded, violations shard-prefixed.
    let mut trace = String::new();
    let mut events: Vec<String> = Vec::new();
    for s in 0..shard_count {
        let snap = run.db.shard(s).trace_snapshot();
        if snap.dropped > 0 {
            run.violations.push(format!(
                "shard {s}: trace ring overflowed ({} events dropped)",
                snap.dropped
            ));
        } else {
            run.violations.extend(
                rda_core::protocol_violations_windowed(&snap.events, &run.windows[s as usize])
                    .into_iter()
                    .map(|v| format!("shard {s} trace: {v}")),
            );
        }
        for ev in &snap.events {
            let _ = writeln!(trace, "s{s} {ev}");
            events.push(match ev.kind {
                rda_core::EventKind::Steal { kind, .. } => format!("Steal:{}", kind.name()),
                ref kind => kind.name().to_string(),
            });
        }
    }
    events.extend(run.extra_events.iter().cloned());

    CheckOutcome {
        violations: run.violations,
        workload_ios,
        crashes: run.crashes,
        fault_fired: !run.injector.fired().is_empty(),
        trace,
        events,
    }
}

/// Execute one schedule step: dispatch to the owning thread, diff the
/// reply against the model — the same oracle as the sequential checker.
fn step(run: &mut TRun, fabric: &Fabric, index: usize, op: SchedOp) {
    match op {
        SchedOp::Begin { slot } => {
            if run.model.is_active(slot) {
                return;
            }
            match fabric.call(slot, Cmd::Begin) {
                Reply::Begun(gid) => {
                    run.slot_gids[slot] = Some(gid);
                    run.model.begin(slot);
                }
                reply => unexpected(run, index, slot, "begin", &reply),
            }
        }
        SchedOp::Read { slot, page } => {
            if !run.model.is_active(slot) {
                return;
            }
            match fabric.call(slot, Cmd::Read(page)) {
                Reply::Value(got) => match run.model.read(slot, page) {
                    Expected::Value(want) => {
                        if got != Some(want) {
                            run.violations.push(format!(
                                "op {index}: thread {slot} read page {page} = {got:?}, model says {want}"
                            ));
                        }
                    }
                    Expected::Conflict => run.violations.push(format!(
                        "op {index}: thread {slot} read page {page} succeeded, model expected a lock conflict"
                    )),
                },
                Reply::Conflict => {
                    if run.model.read(slot, page) != Expected::Conflict {
                        run.violations.push(format!(
                            "op {index}: thread {slot} read page {page} hit a lock conflict the model did not predict"
                        ));
                    }
                }
                ref reply if run.is_crash_reply(reply) => run.crash_and_recover(fabric),
                reply => unexpected(run, index, slot, "read", &reply),
            }
        }
        SchedOp::Write { slot, page, val } => {
            if !run.model.is_active(slot) {
                return;
            }
            match fabric.call(slot, Cmd::Write(page, val)) {
                Reply::Done => {
                    if run.model.write(slot, page, val) == Expected::Conflict {
                        run.violations.push(format!(
                            "op {index}: thread {slot} write page {page} succeeded, model expected a lock conflict"
                        ));
                    }
                }
                Reply::Conflict => {
                    if run.model.write(slot, page, val) != Expected::Conflict {
                        run.violations.push(format!(
                            "op {index}: thread {slot} write page {page} hit a lock conflict the model did not predict"
                        ));
                    }
                }
                ref reply if run.is_crash_reply(reply) => run.crash_and_recover(fabric),
                reply => unexpected(run, index, slot, "write", &reply),
            }
        }
        SchedOp::Commit { slot } => {
            if !run.model.is_active(slot) {
                return;
            }
            match fabric.call(slot, Cmd::Commit) {
                // Commit acknowledged is durable-commit, gate or not.
                Reply::Committed { cross } => {
                    run.model.commit(slot);
                    run.slot_gids[slot] = None;
                    if cross {
                        run.extra_events.push("CrossShardCommit".to_string());
                    }
                }
                ref reply if run.is_crash_reply(reply) => run.crash_and_recover(fabric),
                reply => unexpected(run, index, slot, "commit", &reply),
            }
        }
        SchedOp::Abort { slot } => {
            if !run.model.is_active(slot) {
                return;
            }
            match fabric.call(slot, Cmd::Abort) {
                Reply::Done => {
                    run.model.abort(slot);
                    run.slot_gids[slot] = None;
                }
                ref reply if run.is_crash_reply(reply) => run.crash_and_recover(fabric),
                reply => unexpected(run, index, slot, "abort", &reply),
            }
        }
        SchedOp::CrashRestart => run.crash_and_recover(fabric),
        SchedOp::FailDisk { disk } => {
            if run.failed_disks.contains(&disk) || disk >= run.db.disks() {
                return;
            }
            run.db.fail_disk(disk);
            run.failed_disks.insert(disk);
        }
        SchedOp::MediaRecover { disk } => {
            if !run.failed_disks.contains(&disk) || run.db.active_transactions() > 0 {
                return; // requires quiescence; the final cleanup rebuilds
            }
            match run.db.media_recover(disk) {
                Ok(_) => {
                    run.failed_disks.remove(&disk);
                }
                Err(ref e) if run.is_crash_err(e) => run.crash_and_recover(fabric),
                Err(e) => run.violations.push(format!(
                    "op {index}: media recovery of disk {disk} failed: {e}"
                )),
            }
        }
    }
}

fn unexpected(run: &mut TRun, index: usize, slot: usize, what: &str, reply: &Reply) {
    let desc = match reply {
        Reply::Error(e) => e.clone(),
        Reply::Begun(_) => "unexpected begin ack".to_string(),
        Reply::Value(_) => "unexpected read value".to_string(),
        Reply::Done => "unexpected plain ack".to_string(),
        Reply::Committed { .. } => "unexpected commit ack".to_string(),
        Reply::Conflict => "unexpected lock conflict".to_string(),
        Reply::Crashed => "unexpected crash".to_string(),
    };
    run.violations
        .push(format!("op {index}: thread {slot} {what} failed: {desc}"));
}

/// End of schedule: quiesce, repair, and run every terminal oracle
/// (durability vs. model, parity verify, cross-layer audit — all
/// shard-merged).
fn finalize(run: &mut TRun, fabric: &Fabric) {
    // 1. Abort the stragglers (slot order, deterministic).
    for slot in 0..run.slot_gids.len() {
        if run.wedged {
            return;
        }
        if run.slot_gids[slot].is_none() {
            continue;
        }
        match fabric.call(slot, Cmd::Abort) {
            Reply::Done => {
                run.model.abort(slot);
                run.slot_gids[slot] = None;
            }
            ref reply if run.is_crash_reply(reply) => run.crash_and_recover(fabric),
            Reply::Error(e) => run
                .violations
                .push(format!("final abort of thread {slot} failed: {e}")),
            _ => {}
        }
    }
    // 2. Safety net: a fault that latched without any call observing it.
    if run.injector.is_latched() {
        run.crash_and_recover(fabric);
    }
    // 3. Rebuild any disk still dead so the durability oracle reads a
    //    healthy array.
    let mut guard = 0;
    while !run.failed_disks.is_empty() && !run.wedged {
        guard += 1;
        if guard > 4 {
            run.violations
                .push("final disk rebuilds did not converge".to_string());
            return;
        }
        for disk in run.failed_disks.clone() {
            match run.db.media_recover(disk) {
                Ok(_) => {
                    run.failed_disks.remove(&disk);
                }
                Err(ref e) if run.is_crash_err(e) => {
                    run.crash_and_recover(fabric);
                    break;
                }
                Err(e) => {
                    run.violations
                        .push(format!("final rebuild of disk {disk} failed: {e}"));
                    return;
                }
            }
        }
    }
    if run.wedged {
        return;
    }
    // 4. Durability oracle: committed state (global page order) must
    //    equal the model's.
    match run.db.state_dump() {
        Ok(pages) => {
            for page in 0..run.model.pages() {
                let got = pages
                    .get(page as usize)
                    .and_then(|image| image.first())
                    .copied();
                let want = run.model.committed_byte(page);
                if got != Some(want) {
                    run.violations.push(format!(
                        "durability: page {page} = {got:?} after quiescence, model committed {want}"
                    ));
                }
            }
        }
        Err(e) => run
            .violations
            .push(format!("state dump failed at quiescence: {e}")),
    }
    // 5. Physical parity invariants, every shard.
    match run.db.verify() {
        Ok(list) => run
            .violations
            .extend(list.into_iter().map(|v| format!("parity: {v}"))),
        Err(e) => run.violations.push(format!("parity verify failed: {e}")),
    }
    // 6. Cross-layer audit, shard-merged.
    let audit = run.db.audit();
    run.violations
        .extend(audit.violations().iter().map(|v| format!("audit: {v}")));
    // 7. No 2PC decision may outlive its application.
    let staged = run.db.staged_intents();
    if staged > 0 {
        run.violations.push(format!(
            "{staged} cross-shard intent(s) still staged after quiescence"
        ));
    }
}

/// Salt folded into the master seed so the threaded stream is
/// independent of the sequential generator's at the same seed.
const THREADED_SALT: u64 = 0x7468_7264_7363_6864; // "thrdschd"

/// Generate the `index`-th threaded schedule of the stream named by
/// `seed`: seeded shard/gate knobs, per-thread scripts, a seeded
/// round-robin interleaving, and whole-machine events. Page choice is
/// spread over all four parity groups so multi-page transactions
/// routinely cross shards.
#[must_use]
pub fn generate_threaded(seed: u64, index: u64) -> ThreadedSchedule {
    let mut rng = Rng::new(mix(seed ^ THREADED_SALT, index));
    let knobs = ThreadedKnobs {
        frames: [2, 3, 4, 6][rng.below(4) as usize],
        force: rng.chance(70),
        strict: rng.chance(50),
        shards: [1, 2, 4][rng.below(3) as usize],
        group_commit: rng.chance(50),
    };

    let threads = 2 + rng.below(3) as usize; // 2..=4 concurrent threads
    let mut scripts: Vec<Vec<SchedOp>> = Vec::with_capacity(threads);
    for slot in 0..threads {
        let nops = 1 + rng.below(4) as usize;
        let mut ops = Vec::with_capacity(nops + 1);
        for _ in 0..nops {
            // Half the traffic lands anywhere (cross-shard candidates),
            // half on the thread's "home" group (single-shard traffic).
            let page = if rng.chance(50) {
                rng.below(u64::from(PAGES)) as u32
            } else {
                (slot as u32 % 4) * 4 + rng.below(4) as u32
            };
            ops.push(if rng.chance(70) {
                SchedOp::Write {
                    slot,
                    page,
                    val: (rng.next_u64() & 0xFF) as u8 | 1,
                }
            } else {
                SchedOp::Read { slot, page }
            });
        }
        ops.push(if rng.chance(20) {
            SchedOp::Abort { slot }
        } else {
            SchedOp::Commit { slot }
        });
        scripts.push(ops);
    }

    // Interleave: seeded round-robin, Begin injected at first touch.
    let mut ops = Vec::new();
    let mut cursor = vec![0usize; threads];
    let mut begun = vec![false; threads];
    loop {
        let open: Vec<usize> = (0..threads)
            .filter(|&s| cursor[s] < scripts[s].len())
            .collect();
        if open.is_empty() {
            break;
        }
        let slot = open[rng.below(open.len() as u64) as usize];
        debug_assert!(slot < MAX_SLOTS);
        if !begun[slot] {
            begun[slot] = true;
            ops.push(SchedOp::Begin { slot });
        }
        ops.push(scripts[slot][cursor[slot]]);
        cursor[slot] += 1;
    }

    // Whole-machine events.
    if rng.chance(25) {
        let at = rng.below(ops.len() as u64 + 1) as usize;
        ops.insert(at, SchedOp::CrashRestart);
    }
    if rng.chance(15) {
        // 6 disks per shard (rotated parity, n = 4, twin).
        let disk = rng.below(6 * u64::from(knobs.shards)) as u16;
        let at = rng.below(ops.len() as u64 + 1) as usize;
        ops.insert(at, SchedOp::FailDisk { disk });
        let later = at + 1 + rng.below((ops.len() - at) as u64) as usize;
        ops.insert(later, SchedOp::MediaRecover { disk });
    }

    ThreadedSchedule {
        name: format!("t{seed:016x}-{index}"),
        knobs,
        ops,
        fault: None,
    }
}

/// Schedules per barrier chunk — fixed (never derived from `workers`) so
/// early-stop sweeps are worker-count independent.
const CHUNK: u64 = 8;

/// Threaded sweep parameters (shape-identical to
/// [`SweepConfig`](crate::SweepConfig); kept separate so the two streams
/// can diverge independently).
#[derive(Debug, Clone, Copy)]
pub struct ThreadedSweepConfig {
    /// Master seed; schedule `i` derives from the salted
    /// `mix(seed, i)` stream.
    pub seed: u64,
    /// How many threaded schedules to generate.
    pub schedules: u64,
    /// Sampled fault points per schedule.
    pub faults_per_schedule: u64,
    /// Worker threads for the sweep itself (≥ 1; each schedule
    /// additionally runs its own slot threads). Does not affect the
    /// report.
    pub workers: usize,
    /// Protocol mutations compiled into the engine under test.
    pub mutations: ProtocolMutations,
    /// Stop at the first chunk that produced a failure.
    pub stop_on_failure: bool,
}

impl ThreadedSweepConfig {
    /// A small default threaded sweep over `seed`.
    #[must_use]
    pub fn new(seed: u64) -> ThreadedSweepConfig {
        ThreadedSweepConfig {
            seed,
            schedules: 100,
            faults_per_schedule: 2,
            workers: 1,
            mutations: ProtocolMutations::default(),
            stop_on_failure: false,
        }
    }
}

/// A failing threaded check, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct ThreadedFailure {
    /// Which variant failed: `golden` or `<kind>@<io>`.
    pub variant: String,
    /// The exact schedule (fault included) that failed.
    pub schedule: ThreadedSchedule,
    /// The violations it produced.
    pub violations: Vec<String>,
}

/// Result of checking one generated threaded schedule and its variants.
#[derive(Debug, Clone)]
pub struct ThreadedResult {
    /// Index in the sweep.
    pub index: u64,
    /// Generated schedule name.
    pub name: String,
    /// Array I/Os of the golden run's workload (global, all shards).
    pub workload_ios: u64,
    /// Differential checks executed (golden + fault variants).
    pub checks: u64,
    /// FNV digest over every check's trace + violations.
    pub digest: u64,
    /// First failure, if any.
    pub failure: Option<ThreadedFailure>,
}

/// A whole threaded sweep's outcome.
#[derive(Debug, Clone)]
pub struct ThreadedReport {
    /// Master seed.
    pub seed: u64,
    /// Schedules requested.
    pub requested: u64,
    /// Were protocol mutations active?
    pub mutated: bool,
    /// Per-schedule results, in index order.
    pub results: Vec<ThreadedResult>,
}

impl ThreadedReport {
    /// Every failure, in schedule order.
    #[must_use]
    pub fn failures(&self) -> Vec<&ThreadedFailure> {
        self.results
            .iter()
            .filter_map(|r| r.failure.as_ref())
            .collect()
    }

    /// Did every check pass?
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.results.iter().all(|r| r.failure.is_none())
    }

    /// Total differential checks executed.
    #[must_use]
    pub fn checks(&self) -> u64 {
        self.results.iter().map(|r| r.checks).sum()
    }

    /// Deterministic JSON — byte-identical at any worker count.
    #[must_use]
    pub fn to_json(&self) -> String {
        let results = self
            .results
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("index".to_string(), Json::Int(r.index.cast_signed())),
                    ("name".to_string(), Json::Str(r.name.clone())),
                    (
                        "workload_ios".to_string(),
                        Json::Int(r.workload_ios.cast_signed()),
                    ),
                    ("checks".to_string(), Json::Int(r.checks.cast_signed())),
                    (
                        "digest".to_string(),
                        Json::Str(format!("{:016x}", r.digest)),
                    ),
                    (
                        "failure".to_string(),
                        match &r.failure {
                            None => Json::Null,
                            Some(f) => Json::Obj(vec![
                                ("variant".to_string(), Json::Str(f.variant.clone())),
                                (
                                    "violations".to_string(),
                                    Json::Arr(
                                        f.violations.iter().map(|v| Json::Str(v.clone())).collect(),
                                    ),
                                ),
                                ("schedule".to_string(), f.schedule.to_json()),
                            ]),
                        },
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("seed".to_string(), Json::Int(self.seed.cast_signed())),
            (
                "requested".to_string(),
                Json::Int(self.requested.cast_signed()),
            ),
            ("mutated".to_string(), Json::Bool(self.mutated)),
            ("clean".to_string(), Json::Bool(self.is_clean())),
            ("checks".to_string(), Json::Int(self.checks().cast_signed())),
            ("results".to_string(), Json::Arr(results)),
        ])
        .to_string()
    }
}

/// Check one generated threaded schedule: golden run, then each sampled
/// fault variant until the first failure.
#[must_use]
pub fn check_threaded_index(cfg: &ThreadedSweepConfig, index: u64) -> ThreadedResult {
    let base = generate_threaded(cfg.seed, index);
    let golden = run_threaded(&base, cfg.mutations);
    let mut digest = golden.digest();
    let mut checks = 1;
    let workload_ios = golden.workload_ios;
    let mut failure = fail_of(&base, "golden", &golden);

    if failure.is_none() && workload_ios > 0 && cfg.faults_per_schedule > 0 {
        let (points, _) = crashpoint_schedule(
            workload_ios,
            0,
            cfg.faults_per_schedule,
            mix(cfg.seed ^ THREADED_SALT, index) | 1,
        );
        for (j, &k) in points.iter().enumerate() {
            // Same double-failure guard as the sequential sweep: a
            // schedule that already kills a disk gets only crash faults.
            let mut kind = fault_kind_cycle(j);
            if base.has_fail_disk() && matches!(kind, FaultKind::FailDisk | FaultKind::TornWrite) {
                kind = FaultKind::Crash;
            }
            let variant = base.with_fault(FaultPoint { kind, at_io: k });
            let outcome = run_threaded(&variant, cfg.mutations);
            digest ^= outcome.digest().rotate_left((j as u32 + 1) % 63);
            checks += 1;
            let label = variant.fault.map_or_else(
                || "golden".to_string(),
                |f| format!("{}@{}", f.kind.name(), f.at_io),
            );
            failure = fail_of(&variant, &label, &outcome);
            if failure.is_some() {
                break;
            }
        }
    }

    ThreadedResult {
        index,
        name: base.name,
        workload_ios,
        checks,
        digest,
        failure,
    }
}

fn fail_of(
    sched: &ThreadedSchedule,
    variant: &str,
    outcome: &CheckOutcome,
) -> Option<ThreadedFailure> {
    if outcome.ok() {
        return None;
    }
    Some(ThreadedFailure {
        variant: variant.to_string(),
        schedule: sched.clone(),
        violations: outcome.violations.clone(),
    })
}

/// Run the threaded sweep with the same chunked, index-slotted
/// parallelism as the sequential [`sweep`](crate::sweep): the report is
/// a pure function of the configuration minus `workers`.
#[must_use]
pub fn threaded_sweep(cfg: &ThreadedSweepConfig) -> ThreadedReport {
    let mut results: Vec<ThreadedResult> = Vec::with_capacity(cfg.schedules as usize);
    let workers = cfg.workers.max(1);
    let mut next = 0;
    while next < cfg.schedules {
        let chunk: Vec<u64> = (next..(next + CHUNK).min(cfg.schedules)).collect();
        next += CHUNK;
        let mut slot_results: Vec<Option<ThreadedResult>> = vec![None; chunk.len()];
        if workers == 1 {
            for (slot, &index) in chunk.iter().enumerate() {
                slot_results[slot] = Some(check_threaded_index(cfg, index));
            }
        } else {
            let counter = std::sync::atomic::AtomicUsize::new(0);
            let slots = std::sync::Mutex::new(&mut slot_results);
            crossbeam::thread::scope(|scope| {
                for _ in 0..workers.min(chunk.len()) {
                    scope.spawn(|_| loop {
                        // ordering: Relaxed — work-queue index claim;
                        // atomicity alone guarantees each slot is taken
                        // once, and results publish via the mutex.
                        let slot = counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if slot >= chunk.len() {
                            break;
                        }
                        let result = check_threaded_index(cfg, chunk[slot]);
                        if let Ok(mut guard) = slots.lock() {
                            guard[slot] = Some(result);
                        }
                    });
                }
            })
            .unwrap_or_else(|_| unreachable!("threaded sweep worker panicked"));
        }
        let mut tripped = false;
        for result in slot_results.into_iter().flatten() {
            tripped |= result.failure.is_some();
            results.push(result);
        }
        if cfg.stop_on_failure && tripped {
            break;
        }
    }
    ThreadedReport {
        seed: cfg.seed,
        requested: cfg.schedules,
        mutated: cfg.mutations.any(),
        results,
    }
}

/// A threaded shrink run's result.
#[derive(Debug, Clone)]
pub struct ShrinkThreadedOutcome {
    /// The smallest still-failing schedule found.
    pub schedule: ThreadedSchedule,
    /// Its violations (identical across two replays).
    pub violations: Vec<String>,
    /// Candidate evaluations spent (each is two replays).
    pub evals: u64,
}

/// Does `sched` fail the same way twice? Returns the violation list when
/// it does.
fn fails_deterministically(
    sched: &ThreadedSchedule,
    mutations: ProtocolMutations,
    evals: &mut u64,
) -> Option<Vec<String>> {
    *evals += 1;
    let first = run_threaded(sched, mutations);
    if first.ok() {
        return None;
    }
    let second = run_threaded(sched, mutations);
    (second.violations == first.violations).then_some(first.violations)
}

/// Greedy delta-debugging on a thread-interleaved repro — the same
/// passes as the sequential [`shrink`](crate::shrink) (drop a whole
/// thread's role, drop single ops end-first, drop the planted fault),
/// each candidate accepted only if it still fails identically twice.
#[must_use]
pub fn shrink_threaded(
    base: &ThreadedSchedule,
    mutations: ProtocolMutations,
    budget: u64,
) -> ShrinkThreadedOutcome {
    let mut evals = 0;
    let mut best = base.clone();
    let mut violations = fails_deterministically(&best, mutations, &mut evals)
        .unwrap_or_else(|| vec!["shrink input did not fail deterministically".to_string()]);

    let mut progress = true;
    while progress && evals < budget {
        progress = false;

        // Pass 1: drop a whole thread's role.
        for slot in best.slots() {
            if evals >= budget {
                break;
            }
            let mut candidate = best.clone();
            candidate.ops.retain(|op| op.slot() != Some(slot));
            if candidate.ops.len() == best.ops.len() {
                continue;
            }
            if let Some(v) = fails_deterministically(&candidate, mutations, &mut evals) {
                candidate.name = format!("{}~", best.name.trim_end_matches('~'));
                best = candidate;
                violations = v;
                progress = true;
            }
        }

        // Pass 2: drop single ops, scanning from the end.
        let mut i = best.ops.len();
        while i > 0 && evals < budget {
            i -= 1;
            let mut candidate = best.clone();
            candidate.ops.remove(i);
            if let Some(v) = fails_deterministically(&candidate, mutations, &mut evals) {
                candidate.name = format!("{}~", best.name.trim_end_matches('~'));
                best = candidate;
                violations = v;
                progress = true;
            }
        }

        // Pass 3: drop the planted fault.
        if best.fault.is_some() && evals < budget {
            let mut candidate = best.clone();
            candidate.fault = None;
            if let Some(v) = fails_deterministically(&candidate, mutations, &mut evals) {
                candidate.name = format!("{}~", best.name.trim_end_matches('~'));
                best = candidate;
                violations = v;
                progress = true;
            }
        }
    }

    ShrinkThreadedOutcome {
        schedule: best,
        violations,
        evals,
    }
}

/// One threaded corpus entry: a schedule and what its replay must
/// observe (mirrors [`corpus::CorpusEntry`](crate::corpus::CorpusEntry)
/// for the threaded vocabulary).
#[derive(Debug, Clone)]
pub struct ThreadedCorpusEntry {
    /// The schedule to replay.
    pub schedule: ThreadedSchedule,
    /// Must the replay fail (true) or pass (false)?
    pub expect_fail: bool,
    /// Protocol mutations to compile into the engine for this entry.
    pub mutations: ProtocolMutations,
    /// Event tokens (engine events plus the threaded runner's synthetic
    /// `CrossShardCommit` / `IntentReplayed`) the replay must exercise.
    pub requires: Vec<String>,
}

impl ThreadedCorpusEntry {
    /// Serialize to the corpus JSON shape.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let Json::Obj(mut members) = self.schedule.to_json() else {
            unreachable!("ThreadedSchedule::to_json always returns an object")
        };
        members.push((
            "expect".to_string(),
            Json::Str(if self.expect_fail { "fail" } else { "clean" }.to_string()),
        ));
        members.push((
            "mutations".to_string(),
            Json::Obj(vec![(
                "skip_commit_twin_flip".to_string(),
                Json::Bool(self.mutations.skip_commit_twin_flip),
            )]),
        ));
        members.push((
            "requires".to_string(),
            Json::Arr(self.requires.iter().map(|r| Json::Str(r.clone())).collect()),
        ));
        Json::Obj(members)
    }

    /// Parse an entry from JSON text.
    ///
    /// # Errors
    /// Returns a message naming the malformed field.
    pub fn parse(text: &str) -> Result<ThreadedCorpusEntry, String> {
        let value = Json::parse(text)?;
        let schedule = ThreadedSchedule::from_json(&value)?;
        let expect_fail = match value.get("expect").and_then(Json::as_str) {
            Some("fail") => true,
            Some("clean") | None => false,
            other => return Err(format!("'expect' must be clean|fail, got {other:?}")),
        };
        let mut mutations = ProtocolMutations::default();
        if let Some(m) = value.get("mutations") {
            mutations.skip_commit_twin_flip = m
                .get("skip_commit_twin_flip")
                .and_then(Json::as_bool)
                .unwrap_or(false);
        }
        let requires = value
            .get("requires")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|r| {
                r.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "'requires' entries must be strings".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ThreadedCorpusEntry {
            schedule,
            expect_fail,
            mutations,
            requires,
        })
    }

    /// Replay this entry and check every expectation (pass/fail verdict,
    /// two-replay determinism, required events).
    ///
    /// # Errors
    /// One message per unmet expectation.
    pub fn replay(&self) -> Result<(), String> {
        let outcome = run_threaded(&self.schedule, self.mutations);
        let name = &self.schedule.name;
        if self.expect_fail && outcome.ok() {
            return Err(format!(
                "threaded corpus '{name}': expected a failure, replay passed"
            ));
        }
        if !self.expect_fail && !outcome.ok() {
            return Err(format!(
                "threaded corpus '{name}': expected clean, got {:?}",
                outcome.violations
            ));
        }
        let again = run_threaded(&self.schedule, self.mutations);
        if again.violations != outcome.violations || again.digest() != outcome.digest() {
            return Err(format!(
                "threaded corpus '{name}': replay is not deterministic"
            ));
        }
        for token in &self.requires {
            if !outcome.events.iter().any(|e| e == token) {
                return Err(format!(
                    "threaded corpus '{name}': required event '{token}' never fired"
                ));
            }
        }
        Ok(())
    }
}

/// The threaded corpus directory baked into this crate.
#[must_use]
pub fn threaded_corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus-threaded")
}

/// Load every `*.json` threaded entry under `dir`, sorted by file name.
///
/// # Errors
/// I/O errors, and parse errors naming the offending file.
pub fn load_threaded_dir(
    dir: &std::path::Path,
) -> Result<Vec<(String, ThreadedCorpusEntry)>, String> {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("threaded corpus dir {}: {e}", dir.display()))?
        .filter_map(std::result::Result::ok)
        .map(|entry| entry.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    files.sort();
    let mut entries = Vec::with_capacity(files.len());
    for path in files {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let entry =
            ThreadedCorpusEntry::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        entries.push((stem, entry));
    }
    Ok(entries)
}

/// Replay the whole threaded corpus under `dir`; returns the entry
/// count.
///
/// # Errors
/// The first entry whose expectations are unmet (file name included).
pub fn replay_threaded_dir(dir: &std::path::Path) -> Result<usize, String> {
    let entries = load_threaded_dir(dir)?;
    for (name, entry) in &entries {
        entry.replay().map_err(|e| format!("[{name}] {e}"))?;
    }
    Ok(entries.len())
}
