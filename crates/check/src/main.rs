//! `rda-check` — run the model-based differential checker from the
//! command line.
//!
//! ```text
//! rda-check [--smoke] [--schedules N] [--faults N] [--seed S]
//!           [--workers N] [--mutation] [--no-corpus] [--threaded]
//!           [--out PATH] [--repro-out PATH]
//! ```
//!
//! Default run: replay the regression corpus, then sweep `--schedules`
//! seeded schedules (each golden + `--faults` sampled fault points), then
//! prove the checker's teeth by re-running a short sweep with the
//! `skip_commit_twin_flip` protocol mutation compiled in — that sweep
//! must *fail*, and its counterexample must shrink to a handful of ops.
//! Exit status 0 means: corpus green, sweep clean, mutation caught.
//!
//! `--mutation` flips the main sweep into mutation mode (find + shrink a
//! counterexample, write it to `--repro-out`, exit 0 iff found); this is
//! how new corpus entries are born.

use rda_check::{
    corpus, replay_threaded_dir, shrink, shrink_threaded, sweep, threaded_corpus_dir,
    threaded_sweep, ProtocolMutations, SweepConfig, ThreadedSweepConfig,
};
use std::io::Write as _;
use std::process::ExitCode;

#[allow(clippy::struct_excessive_bools)] // independent CLI switches, not a state machine
struct Args {
    schedules: u64,
    faults: u64,
    seed: u64,
    workers: usize,
    mutation: bool,
    corpus: bool,
    threaded: bool,
    out: Option<String>,
    repro_out: Option<String>,
    replay: Option<String>,
    trace: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        schedules: 500,
        faults: 2,
        seed: 0x1992, // ICDE 1992

        workers: 4,
        mutation: false,
        corpus: true,
        threaded: false,
        out: None,
        repro_out: None,
        replay: None,
        trace: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--smoke" => {
                args.schedules = 60;
                args.faults = 2;
            }
            "--schedules" => args.schedules = parse_u64(&value("--schedules")?)?,
            "--faults" => args.faults = parse_u64(&value("--faults")?)?,
            "--seed" => args.seed = parse_u64(&value("--seed")?)?,
            "--workers" => args.workers = parse_u64(&value("--workers")?)? as usize,
            "--mutation" => args.mutation = true,
            "--no-corpus" => args.corpus = false,
            "--threaded" => args.threaded = true,
            "--out" => args.out = Some(value("--out")?),
            "--repro-out" => args.repro_out = Some(value("--repro-out")?),
            "--replay" => args.replay = Some(value("--replay")?),
            "--trace" => args.trace = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn parse_u64(text: &str) -> Result<u64, String> {
    let (text, radix) = match text.strip_prefix("0x") {
        Some(hex) => (hex, 16),
        None => (text, 10),
    };
    u64::from_str_radix(text, radix).map_err(|e| format!("bad number '{text}': {e}"))
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rda-check: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;

    if let Some(path) = &args.replay {
        return replay_one(&args, path);
    }

    if args.threaded {
        return run_threaded_mode(&args);
    }

    if args.corpus {
        let count = corpus::replay_dir(&corpus::default_dir())?;
        println!("corpus: {count} entries replayed, all expectations met");
    }

    let mutations = if args.mutation {
        ProtocolMutations {
            skip_commit_twin_flip: true,
        }
    } else {
        ProtocolMutations::default()
    };
    let cfg = SweepConfig {
        seed: args.seed,
        schedules: args.schedules,
        faults_per_schedule: args.faults,
        workers: args.workers,
        mutations,
        stop_on_failure: args.mutation,
    };
    let report = sweep(&cfg);
    println!(
        "sweep: seed {:#x}, {} schedules, {} checks, clean = {}",
        cfg.seed,
        report.results.len(),
        report.checks(),
        report.is_clean()
    );
    if let Some(path) = &args.out {
        write_file(path, &report.to_json())?;
        println!("sweep report written to {path}");
    }

    if args.mutation {
        // Mutation mode: the sweep must FIND a counterexample; shrink it.
        let failures = report.failures();
        let Some(first) = failures.first() else {
            return Err(format!(
                "mutation sweep found no counterexample in {} schedules — the checker has no teeth",
                report.results.len()
            ));
        };
        let shrunk = shrink(&first.schedule, mutations, 400);
        println!(
            "mutation caught at '{}' ({}); shrunk to {} ops in {} evals",
            first.schedule.name,
            first.variant,
            shrunk.schedule.ops.len(),
            shrunk.evals
        );
        if let Some(path) = &args.repro_out {
            write_file(path, &shrunk.schedule.to_json().to_string())?;
            println!("shrunk repro written to {path}");
        }
        return Ok(());
    }

    // Clean mode: the sweep must be clean, and the checker must still
    // have teeth — prove it with a short mutated self-test.
    if let Some(first) = report.failures().first() {
        if let Some(path) = &args.repro_out {
            let shrunk = shrink(&first.schedule, ProtocolMutations::default(), 400);
            write_file(path, &shrunk.schedule.to_json().to_string())?;
            eprintln!("shrunk repro written to {path}");
        }
        return Err(format!(
            "sweep found a counterexample: '{}' ({}) — {:?}",
            first.schedule.name, first.variant, first.violations
        ));
    }
    let teeth_cfg = SweepConfig {
        seed: args.seed,
        schedules: 40,
        faults_per_schedule: 1,
        workers: args.workers,
        mutations: ProtocolMutations {
            skip_commit_twin_flip: true,
        },
        stop_on_failure: true,
    };
    let teeth = sweep(&teeth_cfg);
    let failures = teeth.failures();
    let Some(first) = failures.first() else {
        return Err(
            "mutation self-test found no counterexample — the checker has no teeth".to_string(),
        );
    };
    let shrunk = shrink(&first.schedule, teeth_cfg.mutations, 400);
    println!(
        "teeth: skip_commit_twin_flip caught ({}), shrunk to {} ops",
        first.variant,
        shrunk.schedule.ops.len()
    );
    if shrunk.schedule.ops.len() > 12 {
        return Err(format!(
            "mutation repro did not shrink below 12 ops (got {})",
            shrunk.schedule.ops.len()
        ));
    }
    Ok(())
}

/// `--threaded`: replay the threaded corpus, then sweep seeded
/// multi-threaded schedules against the sharded engine. In `--mutation`
/// mode the sweep must find a counterexample and shrink it; otherwise it
/// must be clean.
fn run_threaded_mode(args: &Args) -> Result<(), String> {
    if args.corpus {
        let count = replay_threaded_dir(&threaded_corpus_dir())?;
        println!("threaded corpus: {count} entries replayed, all expectations met");
    }
    let mutations = if args.mutation {
        ProtocolMutations {
            skip_commit_twin_flip: true,
        }
    } else {
        ProtocolMutations::default()
    };
    let cfg = ThreadedSweepConfig {
        seed: args.seed,
        schedules: args.schedules,
        faults_per_schedule: args.faults,
        workers: args.workers,
        mutations,
        stop_on_failure: args.mutation,
    };
    let report = threaded_sweep(&cfg);
    println!(
        "threaded sweep: seed {:#x}, {} schedules, {} checks, clean = {}",
        cfg.seed,
        report.results.len(),
        report.checks(),
        report.is_clean()
    );
    if let Some(path) = &args.out {
        write_file(path, &report.to_json())?;
        println!("threaded sweep report written to {path}");
    }
    if args.mutation {
        let failures = report.failures();
        let Some(first) = failures.first() else {
            return Err(format!(
                "threaded mutation sweep found no counterexample in {} schedules",
                report.results.len()
            ));
        };
        let shrunk = shrink_threaded(&first.schedule, mutations, 400);
        println!(
            "threaded mutation caught at '{}' ({}); shrunk to {} ops in {} evals",
            first.schedule.name,
            first.variant,
            shrunk.schedule.ops.len(),
            shrunk.evals
        );
        if let Some(path) = &args.repro_out {
            write_file(path, &shrunk.schedule.to_json().to_string())?;
            println!("shrunk threaded repro written to {path}");
        }
        return Ok(());
    }
    if let Some(first) = report.failures().first() {
        if let Some(path) = &args.repro_out {
            let shrunk = shrink_threaded(&first.schedule, ProtocolMutations::default(), 400);
            write_file(path, &shrunk.schedule.to_json().to_string())?;
            eprintln!("shrunk threaded repro written to {path}");
        }
        return Err(format!(
            "threaded sweep found a counterexample: '{}' ({}) — {:?}",
            first.schedule.name, first.variant, first.violations
        ));
    }
    Ok(())
}

/// `--replay PATH`: run one schedule JSON file (a shrunk repro or a
/// corpus entry's `schedule` object) and report its outcome; `--trace`
/// dumps the full event trace, `--mutation` arms the twin-flip mutation,
/// `--repro-out` shrinks the failure and writes it back out.
fn replay_one(args: &Args, path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let json = rda_check::Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let sched = rda_check::Schedule::from_json(&json).map_err(|e| format!("{path}: {e}"))?;
    let mutations = if args.mutation {
        ProtocolMutations {
            skip_commit_twin_flip: true,
        }
    } else {
        ProtocolMutations::default()
    };
    let outcome = rda_check::run_schedule(&sched, mutations);
    if args.trace {
        print!("{}", outcome.trace);
    }
    println!(
        "replay '{}': {} workload I/Os, {} crashes, fault fired = {}",
        sched.name, outcome.workload_ios, outcome.crashes, outcome.fault_fired
    );
    if outcome.ok() {
        println!("replay passed: no violations");
        return Ok(());
    }
    for v in &outcome.violations {
        println!("violation: {v}");
    }
    if let Some(out) = &args.repro_out {
        let shrunk = shrink(&sched, mutations, 400);
        write_file(out, &shrunk.schedule.to_json().to_string())?;
        println!(
            "shrunk to {} ops in {} evals; written to {out}",
            shrunk.schedule.ops.len(),
            shrunk.evals
        );
    }
    Err(format!("{} violations", outcome.violations.len()))
}

fn write_file(path: &str, text: &str) -> Result<(), String> {
    let mut file = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
    file.write_all(text.as_bytes())
        .map_err(|e| format!("write {path}: {e}"))?;
    file.write_all(b"\n")
        .map_err(|e| format!("write {path}: {e}"))
}
