//! Greedy delta-debugging shrinker.
//!
//! Given a failing schedule, repeatedly try structurally smaller
//! candidates — whole transaction roles dropped, then single ops, then
//! the planted fault — accepting a candidate only if it *still fails,
//! deterministically*: two replays must produce the identical violation
//! list (a flaky repro is worse than a big one; every accepted step
//! re-verifies determinism, so the final corpus entry replays
//! byte-for-byte). The schedule vocabulary makes any subsequence
//! well-formed — ops addressing a never-begun or finished slot are
//! skipped by definition — so candidates never need repair.

use crate::checker::run_schedule;
use crate::schedule::Schedule;
use rda_core::ProtocolMutations;

/// A shrink run's result.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The smallest still-failing schedule found.
    pub schedule: Schedule,
    /// Its violations (identical across two replays).
    pub violations: Vec<String>,
    /// Candidate evaluations spent (each is two replays).
    pub evals: u64,
}

/// Does `sched` fail the same way twice? Returns the violation list when
/// it does.
fn fails_deterministically(
    sched: &Schedule,
    mutations: ProtocolMutations,
    evals: &mut u64,
) -> Option<Vec<String>> {
    *evals += 1;
    let first = run_schedule(sched, mutations);
    if first.ok() {
        return None;
    }
    let second = run_schedule(sched, mutations);
    (second.violations == first.violations).then_some(first.violations)
}

/// Shrink `base` (which must fail) to a structurally minimal failing
/// schedule, spending at most `budget` candidate evaluations.
#[must_use]
pub fn shrink(base: &Schedule, mutations: ProtocolMutations, budget: u64) -> ShrinkOutcome {
    let mut evals = 0;
    let mut best = base.clone();
    let mut violations = fails_deterministically(&best, mutations, &mut evals)
        .unwrap_or_else(|| vec!["shrink input did not fail deterministically".to_string()]);

    let mut progress = true;
    while progress && evals < budget {
        progress = false;

        // Pass 1: drop a whole transaction role.
        for slot in best.slots() {
            if evals >= budget {
                break;
            }
            let mut candidate = best.clone();
            candidate.ops.retain(|op| op.slot() != Some(slot));
            if candidate.ops.len() == best.ops.len() {
                continue;
            }
            if let Some(v) = fails_deterministically(&candidate, mutations, &mut evals) {
                candidate.name = format!("{}~", best.name.trim_end_matches('~'));
                best = candidate;
                violations = v;
                progress = true;
            }
        }

        // Pass 2: drop single ops, scanning from the end (later ops are
        // most often cleanup that the failure does not need).
        let mut i = best.ops.len();
        while i > 0 && evals < budget {
            i -= 1;
            let mut candidate = best.clone();
            candidate.ops.remove(i);
            if let Some(v) = fails_deterministically(&candidate, mutations, &mut evals) {
                candidate.name = format!("{}~", best.name.trim_end_matches('~'));
                best = candidate;
                violations = v;
                progress = true;
            }
        }

        // Pass 3: drop the planted fault.
        if best.fault.is_some() && evals < budget {
            let mut candidate = best.clone();
            candidate.fault = None;
            if let Some(v) = fails_deterministically(&candidate, mutations, &mut evals) {
                candidate.name = format!("{}~", best.name.trim_end_matches('~'));
                best = candidate;
                violations = v;
                progress = true;
            }
        }

        // Pass 4: normalize CrashRestart pairs — a crash next to another
        // crash, or leading the schedule, is dead weight pass 2 already
        // handles; nothing extra needed thanks to skip semantics.
    }

    ShrinkOutcome {
        schedule: best,
        violations,
        evals,
    }
}
