//! The replayable regression corpus.
//!
//! Every interesting counterexample the checker has ever found (or a
//! scenario worth pinning) lives as one JSON file under
//! `crates/check/corpus/`. A corpus entry is a [`Schedule`] plus its
//! *expectation*: whether the replay must pass or fail, which protocol
//! mutations to compile in, and which trace events the run is required to
//! have exercised (so a refactor that silently stops covering, say,
//! `ParityUndo` breaks the corpus test instead of quietly weakening it).

use crate::checker::run_schedule;
use crate::json::Json;
use crate::schedule::Schedule;
use rda_core::ProtocolMutations;
use std::fs;
use std::path::Path;

/// One corpus entry: a schedule and what replaying it must observe.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// The schedule to replay.
    pub schedule: Schedule,
    /// Must the replay fail (true) or pass (false)?
    pub expect_fail: bool,
    /// Protocol mutations to compile into the engine for this entry.
    pub mutations: ProtocolMutations,
    /// Event tokens (e.g. `ParityUndo`, `Steal:logged`, `TornTwinHeal`)
    /// the replay's trace must contain.
    pub requires: Vec<String>,
}

impl CorpusEntry {
    /// Serialize to the corpus JSON shape.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let Json::Obj(mut members) = self.schedule.to_json() else {
            unreachable!("Schedule::to_json always returns an object")
        };
        members.push((
            "expect".to_string(),
            Json::Str(if self.expect_fail { "fail" } else { "clean" }.to_string()),
        ));
        members.push((
            "mutations".to_string(),
            Json::Obj(vec![(
                "skip_commit_twin_flip".to_string(),
                Json::Bool(self.mutations.skip_commit_twin_flip),
            )]),
        ));
        members.push((
            "requires".to_string(),
            Json::Arr(self.requires.iter().map(|r| Json::Str(r.clone())).collect()),
        ));
        Json::Obj(members)
    }

    /// Parse an entry from JSON text.
    ///
    /// # Errors
    /// Returns a message naming the malformed field.
    pub fn parse(text: &str) -> Result<CorpusEntry, String> {
        let value = Json::parse(text)?;
        let schedule = Schedule::from_json(&value)?;
        let expect_fail = match value.get("expect").and_then(Json::as_str) {
            Some("fail") => true,
            Some("clean") | None => false,
            other => return Err(format!("'expect' must be clean|fail, got {other:?}")),
        };
        let mut mutations = ProtocolMutations::default();
        if let Some(m) = value.get("mutations") {
            mutations.skip_commit_twin_flip = m
                .get("skip_commit_twin_flip")
                .and_then(Json::as_bool)
                .unwrap_or(false);
        }
        let requires = value
            .get("requires")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|r| {
                r.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "'requires' entries must be strings".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CorpusEntry {
            schedule,
            expect_fail,
            mutations,
            requires,
        })
    }

    /// Replay this entry and check every expectation.
    ///
    /// # Errors
    /// One message per unmet expectation: unexpected pass/fail,
    /// non-deterministic violations, or a missing required event.
    pub fn replay(&self) -> Result<(), String> {
        let outcome = run_schedule(&self.schedule, self.mutations);
        let name = &self.schedule.name;
        if self.expect_fail && outcome.ok() {
            return Err(format!(
                "corpus '{name}': expected a failure, replay passed"
            ));
        }
        if !self.expect_fail && !outcome.ok() {
            return Err(format!(
                "corpus '{name}': expected clean, got {:?}",
                outcome.violations
            ));
        }
        // Replays must be deterministic in both verdict and shape.
        let again = run_schedule(&self.schedule, self.mutations);
        if again.violations != outcome.violations || again.digest() != outcome.digest() {
            return Err(format!("corpus '{name}': replay is not deterministic"));
        }
        for token in &self.requires {
            if !outcome.events.iter().any(|e| e == token) {
                return Err(format!(
                    "corpus '{name}': required event '{token}' never fired \
                     (saw: {:?})",
                    dedup(&outcome.events)
                ));
            }
        }
        Ok(())
    }
}

fn dedup(events: &[String]) -> Vec<&str> {
    let mut seen: Vec<&str> = Vec::new();
    for e in events {
        if !seen.contains(&e.as_str()) {
            seen.push(e);
        }
    }
    seen
}

/// The corpus directory baked into this crate.
#[must_use]
pub fn default_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Load every `*.json` entry under `dir`, sorted by file name.
///
/// # Errors
/// I/O errors, and parse errors naming the offending file.
pub fn load_dir(dir: &Path) -> Result<Vec<(String, CorpusEntry)>, String> {
    let mut files: Vec<_> = fs::read_dir(dir)
        .map_err(|e| format!("corpus dir {}: {e}", dir.display()))?
        .filter_map(std::result::Result::ok)
        .map(|entry| entry.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    files.sort();
    let mut entries = Vec::with_capacity(files.len());
    for path in files {
        let text = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let entry = CorpusEntry::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        entries.push((stem, entry));
    }
    Ok(entries)
}

/// Replay the whole corpus under `dir`; returns the entry count.
///
/// # Errors
/// The first entry whose expectations are unmet (file name included).
pub fn replay_dir(dir: &Path) -> Result<usize, String> {
    let entries = load_dir(dir)?;
    for (name, entry) in &entries {
        entry.replay().map_err(|e| format!("[{name}] {e}"))?;
    }
    Ok(entries.len())
}
