//! Seeded schedule generation.
//!
//! Schedules are a pure function of `(seed, index)`: per-slot transaction
//! scripts are drawn using the `rda-sim` access vocabulary, then
//! interleaved by a seeded round-robin so transactions genuinely overlap,
//! then spiked with whole-machine events. Page choice is deliberately
//! skewed onto the first two parity groups — group collisions are where
//! the steal/twin protocol (one parity rider per group, overflow to the
//! UNDO log) actually runs.

use crate::schedule::{DbKnobs, FaultPoint, SchedOp, Schedule, MAX_SLOTS, PAGES};
use rda_faults::FaultKind;
use rda_sim::{Access, AccessKind, TxnScript};

/// Tiny xorshift64 generator — the same family the rest of the workspace
/// uses for seeded tests, kept local so schedule generation never depends
/// on an external RNG's version-to-version stream stability.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeded generator (a zero seed is mapped to a fixed odd constant).
    #[must_use]
    pub fn new(seed: u64) -> Rng {
        Rng(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Uniform draw in `0..n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// True with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// Mix a master seed with a schedule index into an independent stream.
#[must_use]
pub fn mix(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generate the `index`-th schedule of the stream named by `seed`.
#[must_use]
pub fn generate(seed: u64, index: u64) -> Schedule {
    let mut rng = Rng::new(mix(seed, index));
    let knobs = DbKnobs {
        frames: [2, 3, 4, 6][rng.below(4) as usize],
        force: rng.chance(70),
        strict: rng.chance(50),
    };

    // Per-slot scripts in the sim vocabulary.
    let txns = 2 + rng.below(3) as usize; // 2..=4 concurrent roles
    let mut scripts: Vec<TxnScript> = (0..txns)
        .map(|_| {
            let nops = 1 + rng.below(4) as usize; // 1..=4 accesses
            let accesses = (0..nops)
                .map(|_| {
                    // 60% of traffic lands on the first two parity groups.
                    let page = if rng.chance(60) {
                        rng.below(8) as u32
                    } else {
                        rng.below(u64::from(PAGES)) as u32
                    };
                    let kind = if rng.chance(70) {
                        AccessKind::Update
                    } else {
                        AccessKind::Read
                    };
                    Access { page, kind }
                })
                .collect();
            if rng.chance(20) {
                TxnScript::aborting(accesses)
            } else {
                TxnScript::committing(accesses)
            }
        })
        .collect();

    // Interleave: seeded round-robin over the remaining scripts.
    let mut ops = Vec::new();
    let mut cursor = vec![0usize; txns];
    let mut begun = vec![false; txns];
    loop {
        let open: Vec<usize> = (0..txns)
            .filter(|&s| cursor[s] <= scripts[s].accesses.len())
            .collect();
        if open.is_empty() {
            break;
        }
        let slot = open[rng.below(open.len() as u64) as usize];
        debug_assert!(slot < MAX_SLOTS);
        if !begun[slot] {
            begun[slot] = true;
            ops.push(SchedOp::Begin { slot });
        }
        if cursor[slot] == scripts[slot].accesses.len() {
            ops.push(if scripts[slot].aborts {
                SchedOp::Abort { slot }
            } else {
                SchedOp::Commit { slot }
            });
            cursor[slot] += 1; // past the end: closed
            continue;
        }
        let access = scripts[slot].accesses[cursor[slot]];
        cursor[slot] += 1;
        ops.push(match access.kind {
            AccessKind::Read => SchedOp::Read {
                slot,
                page: access.page,
            },
            AccessKind::Update => SchedOp::Write {
                slot,
                page: access.page,
                // Odd and non-zero, so every write is visible against the
                // zero-filled initial state and against torn halves.
                val: (rng.next_u64() & 0xFF) as u8 | 1,
            },
        });
    }
    scripts.clear();

    // Whole-machine events.
    if rng.chance(25) {
        let at = rng.below(ops.len() as u64 + 1) as usize;
        ops.insert(at, SchedOp::CrashRestart);
    }
    if rng.chance(15) {
        // Kill one disk mid-schedule and rebuild it later (media recovery
        // skips itself while transactions are active, so a "too early"
        // rebuild point is deterministic too — the final cleanup rebuilds).
        let disk = rng.below(6) as u16; // rotated parity, n=4, twin → 6 disks
        let at = rng.below(ops.len() as u64 + 1) as usize;
        ops.insert(at, SchedOp::FailDisk { disk });
        let later = at + 1 + rng.below((ops.len() - at) as u64) as usize;
        ops.insert(later, SchedOp::MediaRecover { disk });
    }

    Schedule {
        name: format!("g{seed:016x}-{index}"),
        knobs,
        ops,
        fault: None,
    }
}

/// The fault kind to try for the `j`-th fault variant of a schedule —
/// cycles crash → torn write → disk death.
#[must_use]
pub fn fault_kind_cycle(j: usize) -> FaultKind {
    match j % 3 {
        0 => FaultKind::Crash,
        1 => FaultKind::TornWrite,
        _ => FaultKind::FailDisk,
    }
}

/// Build the `j`-th fault variant of `base` at global I/O `k`.
#[must_use]
pub fn fault_variant(base: &Schedule, j: usize, k: u64) -> Schedule {
    base.with_fault(FaultPoint {
        kind: fault_kind_cycle(j),
        at_io: k,
    })
}
