//! Property tests over the analytical model: sanity invariants that must
//! hold across the whole parameter space, not just the paper's two
//! operating points.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rda_model::{families, p_l, p_m, p_s, s_u, Evaluation, ModelParams, Workload};

// Only the `proptest!` block calls this, and the offline dev stub
// expands that block to nothing.
#[allow(dead_code)]
fn params_strategy() -> impl Strategy<Value = ModelParams> {
    (
        prop_oneof![Just(Workload::HighUpdate), Just(Workload::HighRetrieval)],
        0.0..0.95f64,
        2.0..60.0f64,
        2.0..40.0f64,
    )
        .prop_map(|(wl, c, s, n)| {
            ModelParams::paper_defaults(wl)
                .communality(c)
                .pages_per_txn(s)
                .group_size(n)
        })
}

fn check_sane(e: &Evaluation) -> Result<(), TestCaseError> {
    for b in [&e.non_rda, &e.rda] {
        prop_assert!(b.logging >= 0.0, "c_l {b:?}");
        prop_assert!(b.backout >= 0.0);
        prop_assert!(b.restart >= 0.0);
        prop_assert!(b.retrieval >= 0.0);
        prop_assert!(b.update >= b.retrieval, "updates do strictly more work");
        prop_assert!(b.per_txn > 0.0);
        prop_assert!(b.throughput >= 0.0);
        prop_assert!(b.throughput.is_finite());
    }
    prop_assert!((0.0..=1.0).contains(&e.p_l), "p_l = {}", e.p_l);
    Ok(())
}

/// Always-on driver over a fixed parameter grid: the proptest dev stub
/// compiles the property block away, so the sanity invariants are
/// exercised here regardless.
#[test]
fn fixed_grid_sane_across_families() {
    for wl in [Workload::HighUpdate, Workload::HighRetrieval] {
        for c in [0.0, 0.3, 0.6, 0.9] {
            for s in [3.0, 12.0, 40.0] {
                let p = ModelParams::paper_defaults(wl)
                    .communality(c)
                    .pages_per_txn(s);
                for eval in [
                    families::a1::evaluate(&p),
                    families::a2::evaluate(&p),
                    families::a3::evaluate(&p),
                    families::a4::evaluate(&p),
                ] {
                    if let Err(e) = check_sane(&eval) {
                        panic!("{wl:?} C={c} s={s}: {e}");
                    }
                }
            }
        }
    }
}

/// Always-on driver for the primitive probability bounds.
#[test]
fn fixed_grid_primitives_bounded() {
    for k in [0.5, 4.0, 60.0, 400.0] {
        for n in [2.0, 10.0, 40.0] {
            let v = p_l(k, n, 5000.0);
            assert!((0.0..=1.0).contains(&v), "p_l({k},{n}) = {v}");
        }
    }
    for c in [0.0, 0.4, 0.9] {
        let pm = p_m(0.8, 0.64, c);
        assert!((0.0..=1.0).contains(&pm), "p_m at C={c} = {pm}");
        let ps = p_s(300.0, c.max(0.01), 10.0, 6.0);
        assert!((0.0..=1.0).contains(&ps), "p_s at C={c} = {ps}");
        let p = ModelParams::paper_defaults(Workload::HighUpdate).communality(c.max(0.01));
        let v = s_u(&p, 8.0);
        assert!(
            v >= 0.0 && v <= 8.0 * p.s * p.p_u + 1e-9,
            "s_u at C={c} = {v}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_families_sane_everywhere(p in params_strategy()) {
        check_sane(&families::a1::evaluate(&p))?;
        check_sane(&families::a2::evaluate(&p))?;
        check_sane(&families::a3::evaluate(&p))?;
        check_sane(&families::a4::evaluate(&p))?;
    }

    /// RDA never *hurts* by more than rounding wherever parity rides are
    /// actually available (low p_l). At extreme contention — huge
    /// transactions over large groups — the dirty-group surcharges can
    /// genuinely invert the gain, which `ablation_groupsize` shows as the
    /// downward trend with N; there we only require boundedness.
    #[test]
    fn rda_gain_negative_only_under_heavy_contention(p in params_strategy()) {
        for eval in [
            families::a1::evaluate(&p),
            families::a2::evaluate(&p),
            families::a3::evaluate(&p),
            families::a4::evaluate(&p),
        ] {
            if eval.p_l < 0.1 {
                prop_assert!(
                    eval.gain() > -0.05,
                    "gain {} with p_l {} at {p:?}",
                    eval.gain(),
                    eval.p_l
                );
            } else {
                prop_assert!(eval.gain() > -1.0, "gain bounded: {}", eval.gain());
            }
        }
    }

    /// Primitive probability functions stay in [0, 1] and respond in the
    /// right direction.
    #[test]
    fn primitives_bounded(
        k in 0.0..500.0f64,
        n in 1.0..50.0f64,
        s_total in 100.0..100_000.0f64,
        c in 0.0..1.0f64,
        f_u in 0.0..1.0f64,
        p_u in 0.0..1.0f64,
    ) {
        let pl = p_l(k, n, s_total);
        prop_assert!((0.0..=1.0).contains(&pl));
        let pm = p_m(f_u, p_u, c);
        prop_assert!((0.0..=1.0).contains(&pm));
        let ps = p_s(300.0, c, 10.0, 6.0);
        prop_assert!((0.0..=1.0).contains(&ps));
    }

    /// p_l grows (weakly) with group size N at fixed contention: bigger
    /// groups collide more.
    #[test]
    fn p_l_monotone_in_group_size(k in 2.0..200.0f64) {
        let mut prev = -1.0;
        for n in [2.0, 5.0, 10.0, 20.0, 40.0] {
            let v = p_l(k, n, 5000.0);
            prop_assert!(v >= prev - 1e-12, "p_l must grow with N: {v} after {prev}");
            prev = v;
        }
    }

    /// Throughput grows (weakly) with communality for the TOC families
    /// (fewer misses, same logging).
    #[test]
    fn toc_throughput_monotone_in_c(
        wl in prop_oneof![Just(Workload::HighUpdate), Just(Workload::HighRetrieval)],
    ) {
        let mut prev = 0.0;
        for c in [0.0, 0.2, 0.4, 0.6, 0.8, 0.95] {
            let p = ModelParams::paper_defaults(wl).communality(c);
            let rt = families::a1::evaluate(&p).rda.throughput;
            prop_assert!(rt >= prev, "{wl:?}: rt {rt} after {prev} at C={c}");
            prev = rt;
        }
    }

    /// s_u is bounded by both the total distinct work and the buffer.
    #[test]
    fn s_u_bounds(c in 0.01..0.99f64, k in 1.0..20.0f64) {
        let p = ModelParams::paper_defaults(Workload::HighUpdate).communality(c);
        let v = s_u(&p, k);
        prop_assert!(v >= 0.0);
        prop_assert!(v <= k * p.s * p.p_u + 1e-9, "cannot exceed total touches");
        prop_assert!(v <= p.b / c + 1e-9, "cannot exceed the fixed point B/C");
    }
}
