//! The four recovery-algorithm families of §5.
//!
//! Shared shape: each family computes, for the baseline and for RDA,
//! the §5 cost set `{c_l, c_b, c_c, c_s, c_r, c_u}`, then throughput.
//! TOC families (FORCE) have `c_c = 0` and `p_m = 0` — propagation is
//! folded into the logging cost — so `rt = (T − c_s)/c_t`. ACC families
//! optimize the checkpoint interval `I` numerically (the printed closed
//! form is cross-checked in `ckpt.rs`).

pub mod a1;
pub mod a2;
pub mod a3;
pub mod a4;

use crate::ckpt;
use crate::{CostBreakdown, ModelParams};

/// Assemble a TOC-family breakdown: FORCE writes everything at EOT, so
/// `c_c = 0`, `p_m = 0`, `c_r = s(1−C)`,
/// `c_u = s(1−C) + c_l + p_b·c_b`, `rt = (T − c_s)/c_t`.
pub(crate) fn toc_breakdown(p: &ModelParams, c_l: f64, c_b: f64, c_s: f64) -> CostBreakdown {
    let c_r = p.s * (1.0 - p.c);
    let c_u = c_r + c_l + p.p_b * c_b;
    let c_t = p.per_txn(c_r, c_u);
    CostBreakdown {
        logging: c_l,
        backout: c_b,
        restart: c_s,
        checkpoint: 0.0,
        retrieval: c_r,
        update: c_u,
        per_txn: c_t,
        interval: f64::INFINITY,
        throughput: ((p.t - c_s) / c_t).max(0.0),
    }
}

/// Assemble an ACC-family breakdown.
///
/// * `a_write` — transfers per replaced-modified-page write-back (4 for
///   the baseline, `4 + 2·p_l` with RDA: a write into a dirty group must
///   update both twins — §5.2.2).
/// * `extra_cr` — additional per-miss write-back coefficient beyond `p_m`
///   (the record-logging `2·p_i` term of §5.3.2; zero for page logging).
/// * `restart_fixed` — the `I`-independent part of `c_s` (loser undo +
///   bitmap rebuild).
/// * `redo_per_txn` — redo cost per transaction since the checkpoint
///   (`c_l/4 + 4·s·p_u`); `c_s(I) = (I/(2·c_t))·f_u·redo + fixed`.
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
pub(crate) fn acc_breakdown(
    p: &ModelParams,
    c_l: f64,
    c_b: f64,
    c_c: f64,
    p_m: f64,
    a_write: f64,
    extra_cr: f64,
    restart_fixed: f64,
    redo_per_txn: f64,
) -> CostBreakdown {
    let miss = p.s * (1.0 - p.c);
    let c_r = miss + a_write * miss * (p_m + extra_cr);
    let c_u = c_r + c_l + p.p_b * c_b;
    let c_t = p.per_txn(c_r, c_u);
    // c_s(I): half a checkpoint interval of committed work must be redone
    // (r_c = I / c_t transactions since the checkpoint), plus the fixed
    // loser-undo part.
    let slope = p.f_u * redo_per_txn / (2.0 * c_t);
    let c_s_of_i = move |i: f64| restart_fixed + slope * i;
    let interval = ckpt::optimize_interval(p.t, c_t, c_c, c_s_of_i);
    let throughput = ckpt::throughput(p.t, c_t, c_c, interval, c_s_of_i);
    CostBreakdown {
        logging: c_l,
        backout: c_b,
        restart: c_s_of_i(interval),
        checkpoint: c_c,
        retrieval: c_r,
        update: c_u,
        per_txn: c_t,
        interval,
        throughput,
    }
}

/// The recurring "some pages logged, chain header written" probability
/// term `p_l − p_l^m` (the paper writes it with `m = s·p_u` or
/// `m = s·p_u·p_s`): RECONSTRUCTED from the OCR, interpreted as the
/// probability that a transaction logs at least one but not all of its
/// pages, which is when the log-chain header is needed.
pub(crate) fn chain_term(p_l: f64, m: f64) -> f64 {
    if p_l <= 0.0 {
        return 0.0;
    }
    (p_l - p_l.powf(m)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    #[test]
    fn toc_breakdown_shapes() {
        let p = ModelParams::paper_defaults(Workload::HighUpdate).communality(0.5);
        let b = toc_breakdown(&p, 100.0, 50.0, 1000.0);
        assert_eq!(b.checkpoint, 0.0);
        assert!(b.interval.is_infinite());
        assert!((b.retrieval - 5.0).abs() < 1e-12);
        assert!((b.update - (5.0 + 100.0 + 0.5)).abs() < 1e-12);
        assert!(b.throughput > 0.0);
    }

    #[test]
    fn acc_breakdown_picks_interior_interval() {
        let p = ModelParams::paper_defaults(Workload::HighUpdate).communality(0.5);
        let b = acc_breakdown(&p, 80.0, 50.0, 1200.0, 0.9, 4.0, 0.0, 300.0, 56.0);
        assert!(b.interval > b.per_txn);
        assert!(b.interval < p.t);
        assert!(b.throughput > 0.0);
    }

    #[test]
    fn chain_term_bounds() {
        assert_eq!(chain_term(0.0, 9.0), 0.0);
        let v = chain_term(0.3, 9.0);
        assert!(v > 0.0 && v < 0.3);
        // m = 1 → a transaction with one page either logs it or not; no
        // partial chain.
        assert!(chain_term(0.3, 1.0).abs() < 1e-12);
    }
}
