//! Family A4 — ¬ATOMIC, STEAL, **¬FORCE, ACC**, record logging (§5.3.2,
//! Figures 12 and 13).
//!
//! The regime where the paper's conclusion crowns RDA: record logging
//! keeps the log small, ¬FORCE avoids forced writes — but every *steal* of
//! a page modified by uncommitted transactions still costs before-image
//! handling (`2·p_i` write-backs of log records per replacement). RDA
//! shrinks that to the `p_l` fraction, and the saving grows with the
//! transaction size `s` (Figure 13: ≈6% at `s = 5` to ≈70% at `s = 45`).

use super::{acc_breakdown, chain_term};
use crate::{primitives, Evaluation, ModelParams};

/// Evaluate A4 with and without RDA at one parameter point.
#[must_use]
pub fn evaluate(p: &ModelParams) -> Evaluation {
    let spu = p.s * p.p_u;
    let pfu = p.p * p.f_u;
    let half_pages = p.p_u * p.s / 2.0;
    let rp = p.record;
    let l = primitives::avg_log_entry(rp.d, rp.r, rp.e, p.s);

    let ps = primitives::p_s(p.b, p.c, p.s, p.p);
    // §5.3.2: "The value of K in the expression for p_l is s_u·p_s/2".
    let su = primitives::s_u(p, pfu);
    let pl = primitives::p_l(su * ps / 2.0, p.n, p.s_total);
    let pm = primitives::p_m(p.f_u, p.p_u, p.c);
    let chain = chain_term(pl, spu * ps);

    // §5.3.2: p_i = s_u'/(B − C·s) with s_u' computed for the *other*
    // P − 1 transactions — the chance a replaced frame carries records of
    // uncommitted transactions that must be logged before the steal.
    let su_other = primitives::s_u(p, (p.p - 1.0) * p.f_u);
    let p_i = (su_other / (p.b - p.c * p.s)).clamp(0.0, 1.0);

    // ---- baseline (¬RDA) ---------------------------------------------------
    // c_l = 4·(2·l_bc + s·p_u·(l_bc + 2·L))/l_p: one entry per update with
    // both before- and after-diffs.
    let c_l = 4.0 * (2.0 * rp.l_bc + spu * (rp.l_bc + 2.0 * l)) / rp.l_p;
    // c_b = P·f_u·(c_l/8) + 4·p_u·(s/2)·(1 − C) + 4.
    let c_b = pfu * (c_l / 8.0) + 4.0 * half_pages * (1.0 - p.c) + 4.0;
    // Checkpoint and restart: identical shape to A2.
    let c_c = 4.0 * p.b * pm;
    let redo = c_l / 4.0 + 4.0 * spu;
    let restart_fixed = pfu * redo;
    let non_rda = acc_breakdown(p, c_l, c_b, c_c, pm, 4.0, 2.0 * p_i, restart_fixed, redo);

    // ---- RDA ------------------------------------------------------------------
    // c_l' = 4·(2·l_bc + s·p_u·(l_bc + L·(2 − p_s·(1 − p_l)))
    //        + (l_bc + l_h)·(p_l − p_l^{s·p_u·p_s}))/l_p:
    // the before-diff is skipped only for pages stolen onto the parity.
    let c_l_rda = 4.0
        * (2.0 * rp.l_bc
            + spu * (rp.l_bc + l * (2.0 - ps * (1.0 - pl)))
            + (rp.l_bc + rp.l_h) * chain)
        / rp.l_p;
    // c_b' = P·f_u·(c_l'/8)
    //      + p_u·(s/2)·((4 + 2·p_l)·(1 − C)·(1 − p_s) + 6·p_s·p_l
    //                   + 5·p_s·(1 − p_l)) + 4.
    let c_b_rda = pfu * (c_l_rda / 8.0)
        + half_pages
            * ((4.0 + 2.0 * pl) * (1.0 - p.c) * (1.0 - ps) + 6.0 * ps * pl + 5.0 * ps * (1.0 - pl))
        + 4.0;
    let a_rda = 4.0 + 2.0 * pl;
    let c_c_rda = a_rda * p.b * pm;
    let redo_rda = c_l_rda / 4.0 + 4.0 * spu;
    // Loser undo per crash (per loser): unpropagated pages conservatively
    // rewritten at 4, logged steals 4, parity steals 5; plus the S/N
    // bitmap rebuild.
    let loser_undo = half_pages * (4.0 * (1.0 - ps) + 4.0 * ps * pl + 5.0 * ps * (1.0 - pl));
    let restart_fixed_rda = pfu * (c_l_rda / 4.0 + loser_undo) + p.s_total / p.n;
    // c_r' uses 2·p_i·p_l: only steals that cannot ride the parity force
    // record logging at replacement time.
    let rda = acc_breakdown(
        p,
        c_l_rda,
        c_b_rda,
        c_c_rda,
        pm,
        a_rda,
        2.0 * p_i * pl,
        restart_fixed_rda,
        redo_rda,
    );

    Evaluation {
        non_rda,
        rda,
        p_l: pl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{families::a3, Workload};

    #[test]
    fn paper_claim_14_percent_at_c09_high_update() {
        // §5.3.2 / conclusions: "for the high update frequency environment
        // and for C = 0.9, the increase in throughput is about 14%".
        let p = ModelParams::paper_defaults(Workload::HighUpdate).communality(0.9);
        let gain = evaluate(&p).gain();
        assert!(
            (0.05..0.30).contains(&gain),
            "expected ≈14%, got {:.1}%",
            gain * 100.0
        );
    }

    /// Figure 13's shape: the RDA benefit grows strongly with transaction
    /// size `s`, from single digits at s = 5 to tens of percent at s = 45.
    #[test]
    fn fig13_gain_grows_with_s() {
        let base = ModelParams::paper_defaults(Workload::HighUpdate).communality(0.9);
        let mut prev = -1.0;
        let mut gains = Vec::new();
        for s in [5.0, 15.0, 25.0, 35.0, 45.0] {
            let gain = evaluate(&base.pages_per_txn(s)).gain();
            assert!(gain > prev, "gain must grow with s: {gains:?} then {gain}");
            prev = gain;
            gains.push(gain);
        }
        assert!(gains[0] < 0.15, "s=5 gain small: {}", gains[0]);
        assert!(
            *gains.last().unwrap() > 0.40,
            "s=45 gain large: {}",
            gains.last().unwrap()
        );
    }

    /// Conclusions: "In the case of record logging ... a ¬FORCE, ACC
    /// algorithm performs best, and the addition of RDA recovery improves
    /// its performance": A4+RDA ≥ A3 (both variants).
    #[test]
    fn noforce_record_rda_is_the_best_record_variant() {
        let p = ModelParams::paper_defaults(Workload::HighUpdate).communality(0.9);
        let a4 = evaluate(&p);
        let a3 = a3::evaluate(&p);
        assert!(a4.rda.throughput > a3.rda.throughput);
        assert!(a4.rda.throughput > a3.non_rda.throughput);
        assert!(a4.rda.throughput > a4.non_rda.throughput);
    }

    #[test]
    fn magnitudes_match_figure_12_axis() {
        // Figure 12 high-update axis tops out around 1.9M transactions; we
        // accept the right order of magnitude.
        let p = ModelParams::paper_defaults(Workload::HighUpdate).communality(0.9);
        let e = evaluate(&p);
        for rt in [e.non_rda.throughput, e.rda.throughput] {
            assert!((2.0e5..4.0e6).contains(&rt), "rt = {rt}");
        }
    }

    #[test]
    fn gain_never_negative() {
        for wl in [Workload::HighUpdate, Workload::HighRetrieval] {
            for c in [0.0, 0.3, 0.6, 0.9] {
                let e = evaluate(&ModelParams::paper_defaults(wl).communality(c));
                assert!(e.gain() > -0.02, "{wl:?} C={c}: {}", e.gain());
            }
        }
    }
}
