//! Family A2 — ¬ATOMIC, STEAL, **¬FORCE, ACC**, page logging (§5.2.2,
//! Figure 10).
//!
//! Modified pages stay in the buffer past EOT; REDO recovery reapplies
//! committed work after a crash, bounded by action-consistent checkpoints.
//! RDA can only save the before-images of pages that are actually *stolen*
//! before EOT — a small fraction `p_s` — which is why the paper finds the
//! RDA gain "not significant" here, while the A1+RDA combination beats
//! A2 without RDA (the `crossover` bench).

use super::{acc_breakdown, chain_term};
use crate::{primitives, Evaluation, ModelParams};

/// Evaluate A2 with and without RDA at one parameter point.
#[must_use]
pub fn evaluate(p: &ModelParams) -> Evaluation {
    let spu = p.s * p.p_u;
    let pfu = p.p * p.f_u;
    let half_pages = p.p_u * p.s / 2.0;

    let ps = primitives::p_s(p.b, p.c, p.s, p.p);
    // §5.2.2: "In the formula for p_l, the value of K is P·s·f_u·p_u·p_s/2"
    // — only stolen pages contend for parity groups.
    let k = pfu * spu * ps / 2.0;
    let pl = primitives::p_l(k, p.n, p.s_total);
    let pm = primitives::p_m(p.f_u, p.p_u, p.c);
    let chain = chain_term(pl, spu * ps);

    // ---- baseline (¬RDA) --------------------------------------------------
    // c_l = 4·(2·s·p_u + 2): before- and after-images of every updated
    // page, plus BOT/EOT.
    let c_l = 4.0 * (2.0 * spu + 2.0);
    // c_b = 2·(p_u·s/2)·P·f_u + P·f_u + 4·p_u·(s/2)·(1−C) + 4:
    // the log holds both image kinds (2×) of the concurrent transactions;
    // only pages no longer in the buffer need a disk write-back.
    let c_b = 2.0 * half_pages * pfu + pfu + 4.0 * half_pages * (1.0 - p.c) + 4.0;
    // c_c = 4·B·p_m: flush every modified buffer page at a = 4.
    let c_c = 4.0 * p.b * pm;
    // c_s(I) = (r_c/2)·f_u·(c_l/4 + 4·s·p_u) + P·f_u·(c_l/4 + 4·s·p_u),
    // r_c = I/c_t transactions since the checkpoint.
    let redo = c_l / 4.0 + 4.0 * spu;
    let restart_fixed = pfu * redo;
    let non_rda = acc_breakdown(p, c_l, c_b, c_c, pm, 4.0, 0.0, restart_fixed, redo);

    // ---- RDA ---------------------------------------------------------------
    // §5.2.2: "a modified page will not be logged with probability
    // p_s·(1 − p_l)" — only a stolen page that rides the parity skips its
    // before-image. RECONSTRUCTED:
    // c_l' = 4·(s·p_u·(2 − p_s·(1 − p_l)) + 2) + 4·(p_l − p_l^{s·p_u·p_s}).
    let c_l_rda = 4.0 * (spu * (2.0 - ps * (1.0 - pl)) + 2.0) + 4.0 * chain;
    // c_b' — RECONSTRUCTED on the A1/A4 pattern: log reads scaled by what
    // was actually logged, per-page undo costs by where the page sits:
    // still buffered & unpropagated pages are free; a replaced page is
    // reread and written back at (4 + 2·p_l); stolen pages cost 6 (logged)
    // or 5 (parity).
    let c_b_rda = half_pages * (2.0 - ps * (1.0 - pl)) * pfu
        + chain * pfu
        + pfu
        + half_pages
            * ((4.0 + 2.0 * pl) * (1.0 - p.c) * (1.0 - ps) + 6.0 * ps * pl + 5.0 * ps * (1.0 - pl))
        + 4.0;
    // §5.2.2: "The value of a in the expressions of c_r and c_u is 4 for
    // ¬RDA and 4 + 2·p_l for RDA" (a write-back hitting a dirty group must
    // update both twins).
    let a_rda = 4.0 + 2.0 * pl;
    // c_c' = (4 + 2·p_l)·B·p_m.
    let c_c_rda = a_rda * p.b * pm;
    // c_s'(I): same redo shape over c_l', plus the loser-undo term
    // (s/2)·p_u·(4·(1−p_s) + 4·p_s·p_l + 5·p_s·(1−p_l)) per loser and the
    // S/N bitmap rebuild.
    let redo_rda = c_l_rda / 4.0 + 4.0 * spu;
    let loser_undo = half_pages * (4.0 * (1.0 - ps) + 4.0 * ps * pl + 5.0 * ps * (1.0 - pl));
    let restart_fixed_rda = pfu * (c_l_rda / 4.0 + loser_undo) + p.s_total / p.n;
    let rda = acc_breakdown(
        p,
        c_l_rda,
        c_b_rda,
        c_c_rda,
        pm,
        a_rda,
        0.0,
        restart_fixed_rda,
        redo_rda,
    );

    Evaluation {
        non_rda,
        rda,
        p_l: pl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{families::a1, Workload};

    #[test]
    fn gain_is_modest() {
        // §5.2.2: "the improvement in throughput [from RDA] is not
        // significant in this case" — compare with A1's ≈42%.
        let p = ModelParams::paper_defaults(Workload::HighUpdate).communality(0.9);
        let gain = evaluate(&p).gain();
        assert!(
            (0.0..0.15).contains(&gain),
            "A2 gain should be small, got {gain}"
        );
        let a1_gain = a1::evaluate(&p).gain();
        assert!(
            a1_gain > 2.0 * gain,
            "A1 gain {a1_gain} should dwarf A2 gain {gain}"
        );
    }

    /// CLAIM-X (§5.2.2): "while the ¬FORCE ACC algorithm outperforms the
    /// FORCE TOC algorithm without RDA recovery, the situation is reversed
    /// when RDA recovery is used": A1+RDA ≥ A2¬RDA.
    #[test]
    fn force_rda_beats_noforce_baseline() {
        for c in [0.5, 0.7, 0.9] {
            let p = ModelParams::paper_defaults(Workload::HighUpdate).communality(c);
            let force_rda = a1::evaluate(&p).rda.throughput;
            let noforce_baseline = evaluate(&p).non_rda.throughput;
            assert!(
                force_rda > noforce_baseline,
                "C={c}: A1+RDA {force_rda} vs A2 baseline {noforce_baseline}"
            );
        }
    }

    #[test]
    fn noforce_baseline_beats_force_baseline() {
        // The other half of the claim: without RDA, ¬FORCE/ACC wins.
        for c in [0.5, 0.7, 0.9] {
            let p = ModelParams::paper_defaults(Workload::HighUpdate).communality(c);
            let force = a1::evaluate(&p).non_rda.throughput;
            let noforce = evaluate(&p).non_rda.throughput;
            assert!(noforce > force, "C={c}: A2 {noforce} vs A1 {force}");
        }
    }

    #[test]
    fn magnitudes_match_figure_10_axis() {
        // Figure 10 high-update axis: ≈47 800 … 75 700.
        let p = ModelParams::paper_defaults(Workload::HighUpdate).communality(0.9);
        let e = evaluate(&p);
        for rt in [e.non_rda.throughput, e.rda.throughput] {
            assert!((30_000.0..110_000.0).contains(&rt), "rt = {rt}");
        }
    }

    #[test]
    fn p_l_tiny_because_steals_are_rare() {
        let p = ModelParams::paper_defaults(Workload::HighUpdate).communality(0.9);
        let e = evaluate(&p);
        assert!(e.p_l < 0.01, "p_l = {} should be ≈0 (few steals)", e.p_l);
    }

    #[test]
    fn checkpoint_interval_is_interior() {
        let p = ModelParams::paper_defaults(Workload::HighUpdate).communality(0.9);
        let e = evaluate(&p);
        assert!(e.non_rda.interval > e.non_rda.per_txn * 10.0);
        assert!(e.non_rda.interval < p.t / 10.0);
    }

    #[test]
    fn gain_never_negative() {
        for wl in [Workload::HighUpdate, Workload::HighRetrieval] {
            for c in [0.0, 0.3, 0.6, 0.9] {
                let e = evaluate(&ModelParams::paper_defaults(wl).communality(c));
                assert!(e.gain() > -0.02, "{wl:?} C={c}: {}", e.gain());
            }
        }
    }
}
