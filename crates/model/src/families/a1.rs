//! Family A1 — ¬ATOMIC, STEAL, **FORCE, TOC**, page logging (§5.2.1,
//! Figure 9).
//!
//! All pages modified by a transaction are forced at EOT, so every page
//! write is accounted inside the logging cost (`p_m = 0`, `c_c = 0`): a
//! forced page costs `a = 3` transfers (the old version is at hand when
//! writing the new one).

use super::{chain_term, toc_breakdown};
use crate::{primitives, Evaluation, ModelParams};

/// Evaluate A1 with and without RDA at one parameter point.
#[must_use]
pub fn evaluate(p: &ModelParams) -> Evaluation {
    let spu = p.s * p.p_u;
    let pfu = p.p * p.f_u;
    let half_pages = p.p_u * p.s / 2.0;

    // §5.2.1: "K is equal to half the total number of pages ... modified
    // by concurrent [update] transactions".
    let k = pfu * spu / 2.0;
    let pl = primitives::p_l(k, p.n, p.s_total);
    let chain = chain_term(pl, spu);

    // ---- baseline (¬RDA) ------------------------------------------------
    // c_l = 3·s·p_u  (force the pages, a = 3)
    //     + 4·(2·s·p_u + 4)  (UNDO + REDO images plus BOT/EOT, duplexed
    //       log files at 4 transfers per log page write).
    let c_l = 3.0 * spu + 4.0 * (2.0 * spu + 4.0);
    // c_b — RECONSTRUCTED from the prose (the printed formula is garbled):
    // read the log back to the BOT record through the concurrent update
    // transactions' half-logged before-images and their BOT/EOT records,
    // write back the aborter's own half-done pages at a = 4, plus the
    // abort record.
    let c_b = half_pages * pfu + pfu + 4.0 * half_pages + 4.0;
    // c_s = P·f_u·(s·p_u + 2) + 4·(P·f_u·p_u·s/2): losers' log reads plus
    // rewriting their half-done pages.
    let c_s = pfu * (spu + 2.0) + 4.0 * (pfu * half_pages);
    let non_rda = toc_breakdown(p, c_l, c_b, c_s);

    // ---- RDA -------------------------------------------------------------
    // c_l' = (3 + 2·p_l)·s·p_u   (first write into a dirty group updates
    //        both twins)
    //      + 4·(s·p_u + s·p_u·p_l + 4)  (REDO for all, UNDO only for the
    //        p_l fraction, BOT/EOT)
    //      + 4·(p_l − p_l^{s·p_u})      (log-chain header).
    let c_l_rda = (3.0 + 2.0 * pl) * spu + 4.0 * (spu + spu * pl + 4.0) + 4.0 * chain;
    // c_b' = (p_u·p_l·s/2)·P·f_u + (p_l − p_l^{s·p_u})·P·f_u + P·f_u
    //      + (p_u·s/2)·(6·p_l + 5·(1 − p_l)) + 4:
    // less log to read back (only the p_l fraction was before-imaged);
    // undoing a logged page in a dirty group costs 6 transfers, a
    // parity-riding page 5.
    let c_b_rda = half_pages * pl * pfu
        + chain * pfu
        + pfu
        + half_pages * (6.0 * pl + 5.0 * (1.0 - pl))
        + 4.0;
    // c_s' = P·f_u·(s·p_u·p_l + 2·(p_l − p_l^{s·p_u}) + 2)
    //      + P·f_u·(p_u·s/2)·(4·p_l + 5·(1 − p_l)) + S/N
    // (bitmap reconstruction reads one parity header per group).
    let c_s_rda = pfu * (spu * pl + 2.0 * chain + 2.0)
        + pfu * half_pages * (4.0 * pl + 5.0 * (1.0 - pl))
        + p.s_total / p.n;
    let rda = toc_breakdown(p, c_l_rda, c_b_rda, c_s_rda);

    Evaluation {
        non_rda,
        rda,
        p_l: pl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    #[test]
    fn paper_claim_42_percent_at_c09_high_update() {
        // §5.2.1: "for C = 0.9 the increase in throughput is about 42%".
        let p = ModelParams::paper_defaults(Workload::HighUpdate).communality(0.9);
        let gain = evaluate(&p).gain();
        assert!(
            (0.30..0.55).contains(&gain),
            "expected ≈42% gain, got {:.1}%",
            gain * 100.0
        );
    }

    #[test]
    fn high_update_magnitudes_match_figure_9_axis() {
        // Figure 9's high-update axis spans roughly 48 800 … 77 300
        // transactions per interval.
        let p = ModelParams::paper_defaults(Workload::HighUpdate).communality(0.9);
        let e = evaluate(&p);
        assert!(
            e.non_rda.throughput > 30_000.0 && e.non_rda.throughput < 90_000.0,
            "baseline {}",
            e.non_rda.throughput
        );
        assert!(
            e.rda.throughput > 45_000.0 && e.rda.throughput < 110_000.0,
            "rda {}",
            e.rda.throughput
        );
    }

    #[test]
    fn high_retrieval_gain_is_smaller() {
        // §5.2.1: "the improvement ... is much more significant in the
        // high update frequency environment".
        let hu = evaluate(&ModelParams::paper_defaults(Workload::HighUpdate).communality(0.9));
        let hr = evaluate(&ModelParams::paper_defaults(Workload::HighRetrieval).communality(0.9));
        assert!(hu.gain() > hr.gain());
        assert!(hr.gain() > 0.0, "RDA still helps retrieval workloads");
    }

    #[test]
    fn rda_always_at_least_as_good() {
        for wl in [Workload::HighUpdate, Workload::HighRetrieval] {
            for c in [0.0, 0.2, 0.4, 0.6, 0.8, 0.95] {
                let e = evaluate(&ModelParams::paper_defaults(wl).communality(c));
                assert!(e.gain() > -1e-9, "{wl:?} C={c}: gain {}", e.gain());
            }
        }
    }

    #[test]
    fn throughput_grows_with_communality() {
        let mut prev = 0.0;
        for c in [0.0, 0.25, 0.5, 0.75, 0.95] {
            let e = evaluate(&ModelParams::paper_defaults(Workload::HighUpdate).communality(c));
            assert!(e.rda.throughput >= prev);
            prev = e.rda.throughput;
        }
    }

    #[test]
    fn small_p_l_at_paper_point() {
        // K = 21.6 over 500 groups: collisions are rare, so almost all
        // steals ride the parity.
        let p = ModelParams::paper_defaults(Workload::HighUpdate);
        let e = evaluate(&p);
        assert!(e.p_l > 0.0 && e.p_l < 0.05, "p_l = {}", e.p_l);
    }
}
