//! Family A3 — ¬ATOMIC, STEAL, **FORCE, TOC**, record logging (§5.3.1,
//! Figure 11).
//!
//! Log entries are record-granularity diffs packed into `l_p`-byte log
//! pages, so the logging costs are byte counts divided by `l_p`, times 4
//! transfers per log-page write. Record *locking* replaces page locking:
//! the contention parameter for `p_l` becomes `s_u/2`, the expected number
//! of distinct buffer pages modified by the concurrent transactions.

use super::{chain_term, toc_breakdown};
use crate::{primitives, Evaluation, ModelParams};

/// Evaluate A3 with and without RDA at one parameter point.
#[must_use]
pub fn evaluate(p: &ModelParams) -> Evaluation {
    let spu = p.s * p.p_u;
    let pfu = p.p * p.f_u;
    let half_pages = p.p_u * p.s / 2.0;
    let rp = p.record;
    let l = primitives::avg_log_entry(rp.d, rp.r, rp.e, p.s);

    // §5.3.1: "The value of K in the expression of p_l is s_u/2".
    let su = primitives::s_u(p, pfu);
    let pl = primitives::p_l(su / 2.0, p.n, p.s_total);
    let chain = chain_term(pl, spu);

    // Bytes of one transaction's log stream: BOT+EOT plus an entry header
    // (l_bc) and body (L) per update.
    let redo_bytes = 2.0 * rp.l_bc + spu * (rp.l_bc + l);
    let undo_bytes_rda = 2.0 * rp.l_bc + spu * (rp.l_bc + l) * pl + (rp.l_bc + rp.l_h) * chain;

    // ---- baseline (¬RDA) ---------------------------------------------------
    // c_l = 3·s·p_u + 4·2·(2·l_bc + s·p_u·(l_bc + L))/l_p:
    // force the pages (a = 3) + UNDO and REDO log streams.
    let c_l = 3.0 * spu + 4.0 * 2.0 * redo_bytes / rp.l_p;
    // c_b = P·f_u·(l_bc + s·p_u·(l_bc + L)/2)/l_p + 4·(p_u·s/2) + 4.
    let c_b = pfu * (rp.l_bc + spu * (rp.l_bc + l) / 2.0) / rp.l_p + 4.0 * half_pages + 4.0;
    // c_s = P·f_u·(2·l_bc + s·p_u·(l_bc + L))/l_p + 4·P·f_u·(p_u·s/2).
    let c_s = pfu * redo_bytes / rp.l_p + 4.0 * pfu * half_pages;
    let non_rda = toc_breakdown(p, c_l, c_b, c_s);

    // ---- RDA ------------------------------------------------------------------
    // c_l' = (3 + 2·p_l)·s·p_u + 4·(REDO bytes)/l_p + 4·(UNDO bytes)/l_p,
    // with UNDO reduced to the p_l fraction plus the chain header.
    let c_l_rda =
        (3.0 + 2.0 * pl) * spu + 4.0 * redo_bytes / rp.l_p + 4.0 * undo_bytes_rda / rp.l_p;
    // c_b' = P·f_u·(l_bc + s·p_u·(l_bc + L)·p_l/2 + (l_bc + l_h)·chain)/l_p
    //      + (p_u·s/2)·(6·p_l + 5·(1 − p_l)) + 4.
    let c_b_rda = pfu * (rp.l_bc + spu * (rp.l_bc + l) * pl / 2.0 + (rp.l_bc + rp.l_h) * chain)
        / rp.l_p
        + half_pages * (6.0 * pl + 5.0 * (1.0 - pl))
        + 4.0;
    // c_s' = P·f_u·(2·l_bc + s·p_u·(l_bc + L)·p_l + 2·(l_bc + l_h)·chain)/l_p
    //      + (P·f_u·p_u·s/2)·(4·p_l + 5·(1 − p_l)) + S/N.
    let c_s_rda = pfu
        * (2.0 * rp.l_bc + spu * (rp.l_bc + l) * pl + 2.0 * (rp.l_bc + rp.l_h) * chain)
        / rp.l_p
        + pfu * half_pages * (4.0 * pl + 5.0 * (1.0 - pl))
        + p.s_total / p.n;
    let rda = toc_breakdown(p, c_l_rda, c_b_rda, c_s_rda);

    Evaluation {
        non_rda,
        rda,
        p_l: pl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{families::a1, Workload};

    #[test]
    fn record_logging_is_cheaper_than_page_logging() {
        // §5.3's point: log volume shrinks from page images to diffs, so
        // throughput is much higher than A1's at the same parameters.
        let p = ModelParams::paper_defaults(Workload::HighUpdate).communality(0.9);
        let a3 = evaluate(&p);
        let a1 = a1::evaluate(&p);
        assert!(a3.non_rda.throughput > 1.5 * a1.non_rda.throughput);
    }

    #[test]
    fn gain_small_but_positive_high_update() {
        // The Fig-11 regime: forcing the data pages dominates the cost and
        // record logging is already cheap, so RDA's UNDO savings barely
        // move throughput — the conclusion's "FORCE, TOC algorithm
        // [record logging] ... the addition of RDA ... improves" only
        // slightly; the big record-logging win is A4's (Fig 12/13).
        let p = ModelParams::paper_defaults(Workload::HighUpdate).communality(0.9);
        let gain = evaluate(&p).gain();
        assert!((0.005..0.15).contains(&gain), "gain {gain}");
    }

    #[test]
    fn magnitudes_match_figure_11_axis() {
        // Figure 11 high-update axis: ≈150 600 … 215 900.
        let p = ModelParams::paper_defaults(Workload::HighUpdate).communality(0.9);
        let e = evaluate(&p);
        for rt in [e.non_rda.throughput, e.rda.throughput] {
            assert!((100_000.0..300_000.0).contains(&rt), "rt = {rt}");
        }
    }

    #[test]
    fn p_l_larger_than_a1() {
        // Record locking shares pages, so the contention parameter s_u/2
        // exceeds A1's s·p_u·P·f_u/2 ... at high communality the shared
        // buffer shrinks the distinct-page count; just sanity-bound it.
        let p = ModelParams::paper_defaults(Workload::HighUpdate).communality(0.9);
        let e = evaluate(&p);
        assert!(e.p_l >= 0.0 && e.p_l < 0.2, "p_l = {}", e.p_l);
    }

    #[test]
    fn gain_never_negative() {
        for wl in [Workload::HighUpdate, Workload::HighRetrieval] {
            for c in [0.0, 0.3, 0.6, 0.9] {
                let e = evaluate(&ModelParams::paper_defaults(wl).communality(c));
                assert!(e.gain() > -0.02, "{wl:?} C={c}: {}", e.gain());
            }
        }
    }
}
