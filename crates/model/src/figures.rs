//! Series generators for every figure in the paper's evaluation.

use crate::{families, Evaluation, ModelParams, Workload};
use serde::Serialize;

/// One point of a throughput-vs-communality curve.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct FigurePoint {
    /// Communality `C`.
    pub c: f64,
    /// Baseline throughput.
    pub non_rda: f64,
    /// RDA throughput.
    pub rda: f64,
    /// Fractional gain.
    pub gain: f64,
}

/// A full figure: one curve pair per workload environment.
#[derive(Debug, Clone, Serialize)]
pub struct FigureSeries {
    /// Which figure this reproduces ("fig9" … "fig12").
    pub id: &'static str,
    /// Human-readable description of the algorithm family.
    pub family: &'static str,
    /// High-update curve.
    pub high_update: Vec<FigurePoint>,
    /// High-retrieval curve.
    pub high_retrieval: Vec<FigurePoint>,
}

/// One point of the Figure-13 gain-vs-s curve.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct GainPoint {
    /// Pages accessed per transaction.
    pub s: f64,
    /// Percent throughput increase from RDA.
    pub percent_gain: f64,
}

/// Figure 13: percent gain versus transaction size.
#[derive(Debug, Clone, Serialize)]
pub struct GainSeries {
    /// Figure id ("fig13").
    pub id: &'static str,
    /// Description.
    pub family: &'static str,
    /// Points for s = 5 … 45.
    pub points: Vec<GainPoint>,
}

fn sweep(
    id: &'static str,
    family: &'static str,
    eval: impl Fn(&ModelParams) -> Evaluation,
    cs: &[f64],
) -> FigureSeries {
    let run = |wl: Workload| {
        cs.iter()
            .map(|&c| {
                let e = eval(&ModelParams::paper_defaults(wl).communality(c));
                FigurePoint {
                    c,
                    non_rda: e.non_rda.throughput,
                    rda: e.rda.throughput,
                    gain: e.gain(),
                }
            })
            .collect()
    };
    FigureSeries {
        id,
        family,
        high_update: run(Workload::HighUpdate),
        high_retrieval: run(Workload::HighRetrieval),
    }
}

/// Default communality grid for the figures (the paper plots C ∈ [0, 1]).
#[must_use]
pub fn default_grid() -> Vec<f64> {
    (0..=20)
        .map(|i| f64::from(i) * 0.05)
        .map(|c| c.min(0.99))
        .collect()
}

/// Figure 9: page logging, FORCE/TOC.
#[must_use]
pub fn fig9(cs: &[f64]) -> FigureSeries {
    sweep(
        "fig9",
        "¬ATOMIC, STEAL, FORCE, TOC — page logging",
        families::a1::evaluate,
        cs,
    )
}

/// Figure 10: page logging, ¬FORCE/ACC.
#[must_use]
pub fn fig10(cs: &[f64]) -> FigureSeries {
    sweep(
        "fig10",
        "¬ATOMIC, STEAL, ¬FORCE, ACC — page logging",
        families::a2::evaluate,
        cs,
    )
}

/// Figure 11: record logging, FORCE/TOC.
#[must_use]
pub fn fig11(cs: &[f64]) -> FigureSeries {
    sweep(
        "fig11",
        "¬ATOMIC, STEAL, FORCE, TOC — record logging",
        families::a3::evaluate,
        cs,
    )
}

/// Figure 12: record logging, ¬FORCE/ACC.
#[must_use]
pub fn fig12(cs: &[f64]) -> FigureSeries {
    sweep(
        "fig12",
        "¬ATOMIC, STEAL, ¬FORCE, ACC — record logging",
        families::a4::evaluate,
        cs,
    )
}

/// Figure 13: percent RDA gain versus pages accessed per transaction, for
/// the ¬FORCE/ACC record-logging family, high-update environment,
/// C = 0.9.
#[must_use]
pub fn fig13(s_values: &[f64]) -> GainSeries {
    let base = ModelParams::paper_defaults(Workload::HighUpdate).communality(0.9);
    let points = s_values
        .iter()
        .map(|&s| {
            let e = families::a4::evaluate(&base.pages_per_txn(s));
            GainPoint {
                s,
                percent_gain: e.gain() * 100.0,
            }
        })
        .collect();
    GainSeries {
        id: "fig13",
        family: "¬FORCE, ACC, record logging — C = 0.9, high update",
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_and_series_shapes() {
        let grid = default_grid();
        assert_eq!(grid.len(), 21);
        let f = fig9(&grid);
        assert_eq!(f.high_update.len(), 21);
        assert_eq!(f.high_retrieval.len(), 21);
        assert_eq!(f.id, "fig9");
    }

    #[test]
    fn all_figures_have_positive_throughput() {
        let grid = [0.0, 0.5, 0.9];
        for fig in [fig9(&grid), fig10(&grid), fig11(&grid), fig12(&grid)] {
            for pt in fig.high_update.iter().chain(&fig.high_retrieval) {
                assert!(pt.non_rda > 0.0, "{} C={}", fig.id, pt.c);
                assert!(pt.rda > 0.0, "{} C={}", fig.id, pt.c);
            }
        }
    }

    #[test]
    fn fig13_monotone_increasing() {
        let s: Vec<f64> = (1..=9).map(|i| f64::from(i) * 5.0).collect();
        let g = fig13(&s);
        assert_eq!(g.points.len(), 9);
        for w in g.points.windows(2) {
            assert!(w[1].percent_gain > w[0].percent_gain);
        }
    }

    #[test]
    fn figures_serialize_to_json() {
        let f = fig9(&[0.5]);
        let json = serde_json::to_string(&f).unwrap();
        assert!(json.contains("\"fig9\""));
        let g = fig13(&[10.0]);
        assert!(serde_json::to_string(&g).unwrap().contains("percent_gain"));
    }
}
