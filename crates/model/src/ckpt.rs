//! Optimal checkpoint interval and the throughput formula (§5 and
//! equation (1)).
//!
//! In an availability interval of `T` page transfers, restart costs `c_s`
//! once, and each of the `(T − c_s − I/2)/I` checkpoints costs `c_c`
//! (the paper assumes the crash lands mid-interval). With `c_s` linear in
//! `I` — redo work grows with the checkpoint distance — there is a classic
//! interior optimum.

/// Transactions per availability interval for given costs:
/// `rt(I) = (T − c_s(I) − c_c·(T − c_s(I) − I/2)/I) / c_t`.
#[must_use]
pub fn throughput(t: f64, c_t: f64, c_c: f64, interval: f64, c_s_of_i: impl Fn(f64) -> f64) -> f64 {
    let c_s = c_s_of_i(interval);
    let checkpoints = ((t - c_s - interval / 2.0) / interval).max(0.0);
    ((t - c_s - c_c * checkpoints) / c_t).max(0.0)
}

/// The paper's closed form (equation (1) solved; §5.2.2):
/// `I* = sqrt(2·c_t·c_c·(T − c_s⁰) / (f_u·(c_l/4 + 4·s·p_u)))`
/// where `c_s⁰` is the `I`-independent part of the restart cost and
/// `f_u·(c_l/4 + 4·s·p_u)/(2·c_t)` is `d c_s/d I`.
///
/// `redo_per_txn = c_l/4 + 4·s·p_u` (reading a transaction's log and
/// rewriting its pages).
#[must_use]
pub fn optimal_interval_closed_form(
    t: f64,
    c_t: f64,
    c_c: f64,
    f_u: f64,
    redo_per_txn: f64,
    c_s_fixed: f64,
) -> f64 {
    let slope = f_u * redo_per_txn / (2.0 * c_t);
    if slope <= 0.0 || c_c <= 0.0 {
        return t; // checkpointing free or useless: checkpoint never
    }
    (c_c * (t - c_s_fixed).max(0.0) / slope).sqrt()
}

/// Numeric optimum by golden-section search over `I ∈ [c_t, T]`,
/// maximizing [`throughput`]. Used to cross-check (and in the benches, to
/// replace) the closed form, whose printed version in the OCR is garbled.
#[must_use]
pub fn optimize_interval(t: f64, c_t: f64, c_c: f64, c_s_of_i: impl Fn(f64) -> f64 + Copy) -> f64 {
    let f = |i: f64| throughput(t, c_t, c_c, i, c_s_of_i);
    // Golden-section on a log scale: the optimum spans orders of magnitude.
    let (mut lo, mut hi) = (c_t.max(1.0).ln(), t.ln());
    let phi = (5.0_f64.sqrt() - 1.0) / 2.0;
    for _ in 0..200 {
        let m1 = hi - phi * (hi - lo);
        let m2 = lo + phi * (hi - lo);
        if f(m1.exp()) < f(m2.exp()) {
            lo = m1;
        } else {
            hi = m2;
        }
    }
    f64::midpoint(lo, hi).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_basic() {
        // No checkpoint cost, no restart: rt = T/c_t.
        let rt = throughput(1.0e6, 100.0, 0.0, 1.0e6, |_| 0.0);
        assert!((rt - 10_000.0).abs() < 1.0);
    }

    #[test]
    fn throughput_decreases_with_checkpoint_cost() {
        let cheap = throughput(1.0e6, 100.0, 10.0, 1.0e4, |_| 0.0);
        let pricey = throughput(1.0e6, 100.0, 1000.0, 1.0e4, |_| 0.0);
        assert!(cheap > pricey);
    }

    #[test]
    fn numeric_optimum_matches_closed_form() {
        // c_s(I) = fixed + slope·I with the closed form's slope shape.
        let (t, c_t, c_c, f_u, redo) = (5.0e6, 80.0, 1200.0, 0.8, 60.0);
        let fixed = 500.0;
        let slope = f_u * redo / (2.0 * c_t);
        let c_s = move |i: f64| fixed + slope * i;
        let closed = optimal_interval_closed_form(t, c_t, c_c, f_u, redo, fixed);
        let numeric = optimize_interval(t, c_t, c_c, c_s);
        let rel = (closed - numeric).abs() / closed;
        assert!(rel < 0.05, "closed {closed} vs numeric {numeric}");
        // And the numeric optimum is at least as good as the closed form.
        let rt_num = throughput(t, c_t, c_c, numeric, c_s);
        let rt_closed = throughput(t, c_t, c_c, closed, c_s);
        assert!(rt_num >= rt_closed * 0.9999);
    }

    #[test]
    fn free_checkpoints_mean_checkpoint_always_is_fine() {
        let i = optimal_interval_closed_form(1.0e6, 100.0, 0.0, 0.8, 50.0, 0.0);
        assert_eq!(i, 1.0e6);
    }

    #[test]
    fn optimum_interior() {
        // The optimum should be strictly inside (c_t, T) for realistic
        // parameters.
        let slope = 0.3;
        let c_s = move |i: f64| 100.0 + slope * i;
        let i = optimize_interval(5.0e6, 80.0, 1200.0, c_s);
        assert!(i > 80.0 * 2.0 && i < 5.0e6 / 2.0, "interval {i}");
    }
}
