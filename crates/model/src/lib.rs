//! # rda-model — the paper's §5 analytical performance model
//!
//! Closed-form costs, in units of **page transfers**, for the four
//! recovery-algorithm families evaluated by *Database Recovery Using
//! Redundant Disk Arrays* (ICDE 1992), each with and without RDA recovery:
//!
//! | family | §      | logging | EOT     | checkpoint | figure |
//! |--------|--------|---------|---------|------------|--------|
//! | A1     | §5.2.1 | page    | FORCE   | TOC        | Fig 9  |
//! | A2     | §5.2.2 | page    | ¬FORCE  | ACC        | Fig 10 |
//! | A3     | §5.3.1 | record  | FORCE   | TOC        | Fig 11 |
//! | A4     | §5.3.2 | record  | ¬FORCE  | ACC        | Fig 12 |
//!
//! Throughput is transactions per availability interval of `T` page
//! transfers: `rt = (T − c_s − c_c·ncheckpoints) / c_t` with
//! `c_t = (1−f_u)·c_r + f_u·c_u` (§5).
//!
//! The source text available to this reproduction is a rough OCR; every
//! equation is implemented with a doc comment citing the paper section, and
//! terms that had to be reconstructed from the surrounding prose are marked
//! `RECONSTRUCTED`. Known discrepancies between the printed formulas and
//! the paper's own derivations (e.g. the closed form of `s_u`) are exposed
//! through [`ModelVariant`]. See DESIGN.md §2 for the full list.
//!
//! ```
//! use rda_model::{families, ModelParams, Workload};
//!
//! let p = ModelParams::paper_defaults(Workload::HighUpdate).communality(0.9);
//! let eval = families::a1::evaluate(&p);
//! let gain = eval.rda.throughput / eval.non_rda.throughput - 1.0;
//! // The paper reports ≈42% for this point (§5.2.1).
//! assert!(gain > 0.30 && gain < 0.55, "gain = {gain}");
//! ```

mod ckpt;
pub mod families;
mod figures;
mod params;
mod primitives;
pub mod reliability;

pub use ckpt::{optimal_interval_closed_form, optimize_interval, throughput};
pub use figures::{
    default_grid, fig10, fig11, fig12, fig13, fig9, FigurePoint, FigureSeries, GainPoint,
    GainSeries,
};
pub use params::{ModelParams, ModelVariant, RecordParams, Workload};
pub use primitives::{avg_log_entry, p_l, p_m, p_s, s_u};

/// Costs of one configuration (all in page transfers).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct CostBreakdown {
    /// Cost of logging per update transaction (`c_l`).
    pub logging: f64,
    /// Cost of backing out an aborted transaction (`c_b`).
    pub backout: f64,
    /// Cost of restart after a crash (`c_s`).
    pub restart: f64,
    /// Cost of one checkpoint (`c_c`, zero for TOC families).
    pub checkpoint: f64,
    /// Cost of a retrieval transaction (`c_r`).
    pub retrieval: f64,
    /// Cost of an update transaction (`c_u`).
    pub update: f64,
    /// Average transaction cost (`c_t`).
    pub per_txn: f64,
    /// Optimal checkpoint interval `I` in page transfers (infinite for TOC
    /// families, which checkpoint per transaction).
    pub interval: f64,
    /// Transactions per availability interval (`r_t`).
    pub throughput: f64,
}

/// RDA-vs-baseline evaluation of one family at one parameter point.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct Evaluation {
    /// The traditional (¬RDA) algorithm.
    pub non_rda: CostBreakdown,
    /// The same algorithm with RDA recovery.
    pub rda: CostBreakdown,
    /// Probability an updated page must still be UNDO-logged under RDA
    /// (`p_l`).
    pub p_l: f64,
}

impl Evaluation {
    /// Fractional throughput gain of RDA over the baseline.
    #[must_use]
    pub fn gain(&self) -> f64 {
        self.rda.throughput / self.non_rda.throughput - 1.0
    }
}
