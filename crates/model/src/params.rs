//! Model parameters (§5, values from Reuter TODS 1984 as cited by the
//! paper).

use serde::Serialize;

/// Which of the paper's two workload environments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Workload {
    /// High update frequency: `s = 10`, `f_u = 0.8`, `p_u = 0.9`, `d = 3`.
    HighUpdate,
    /// High retrieval frequency: `s = 40`, `f_u = 0.1`, `p_u = 0.3`,
    /// `d = 8`.
    HighRetrieval,
}

/// Variant switches for equations where the OCR'd paper text conflicts
/// with its own derivation (DESIGN.md §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub enum ModelVariant {
    /// Use the internally consistent re-derived forms (default): e.g.
    /// `s_u = (B/C)(1 − (1 − C·s·p_u/B)^{P·f_u})`, which satisfies the
    /// appendix recurrence at every step.
    #[default]
    Reconstructed,
    /// Use the formulas exactly as printed, garbles and all: e.g.
    /// `s_u = B(1 − (1 − C·s·p_u/B)^{P·f_u})`.
    PaperLiteral,
}

/// Record-logging parameters (§5.3; lengths in bytes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RecordParams {
    /// Update statements per transaction (`d`): 3 for high-update, 8 for
    /// high-retrieval environments.
    pub d: f64,
    /// Length of a long log entry (`r` = 100).
    pub r: f64,
    /// Length of a short log entry (`e` = 10).
    pub e: f64,
    /// Length of a BOT/EOT record (`l_bc` = 16).
    pub l_bc: f64,
    /// Physical page length (`l_p` = 2020).
    pub l_p: f64,
    /// Log chain header length (`l_h` = 4).
    pub l_h: f64,
}

/// Full parameter set for one model evaluation point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ModelParams {
    /// Buffer frames (`B` = 300).
    pub b: f64,
    /// Database size in pages (`S` = 5000).
    pub s_total: f64,
    /// Data pages per parity group (`N` = 10).
    pub n: f64,
    /// Concurrent transactions (`P` = 6).
    pub p: f64,
    /// Abort probability (`p_b` = 0.01).
    pub p_b: f64,
    /// Availability interval in page transfers (`T` = 5·10⁶).
    pub t: f64,
    /// Pages accessed per transaction (`s`).
    pub s: f64,
    /// Fraction of update transactions (`f_u`).
    pub f_u: f64,
    /// Probability a page access is an update (`p_u`).
    pub p_u: f64,
    /// Communality — probability a requested page is in the buffer (`C`).
    pub c: f64,
    /// Record-logging byte parameters.
    pub record: RecordParams,
    /// Equation variant switches.
    pub variant: ModelVariant,
}

impl ModelParams {
    /// The paper's parameter values (§5.2.1 and §5.3) for a workload
    /// environment, at communality `C = 0`. Use
    /// [`ModelParams::communality`] to sweep `C`.
    #[must_use]
    pub fn paper_defaults(workload: Workload) -> ModelParams {
        let (s, f_u, p_u, d) = match workload {
            Workload::HighUpdate => (10.0, 0.8, 0.9, 3.0),
            Workload::HighRetrieval => (40.0, 0.1, 0.3, 8.0),
        };
        ModelParams {
            b: 300.0,
            s_total: 5000.0,
            n: 10.0,
            p: 6.0,
            p_b: 0.01,
            t: 5.0e6,
            s,
            f_u,
            p_u,
            c: 0.0,
            record: RecordParams {
                d,
                r: 100.0,
                e: 10.0,
                l_bc: 16.0,
                l_p: 2020.0,
                l_h: 4.0,
            },
            variant: ModelVariant::Reconstructed,
        }
    }

    /// Builder: set communality `C`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ C ≤ 1`.
    #[must_use]
    pub fn communality(mut self, c: f64) -> ModelParams {
        assert!((0.0..=1.0).contains(&c), "communality must be in [0, 1]");
        self.c = c;
        self
    }

    /// Builder: set pages accessed per transaction `s` (Figure 13 sweeps
    /// this).
    #[must_use]
    pub fn pages_per_txn(mut self, s: f64) -> ModelParams {
        assert!(s > 0.0);
        self.s = s;
        self
    }

    /// Builder: set the parity group size `N`.
    #[must_use]
    pub fn group_size(mut self, n: f64) -> ModelParams {
        assert!(n > 0.0);
        self.n = n;
        self
    }

    /// Builder: select the equation variant.
    #[must_use]
    pub fn variant(mut self, v: ModelVariant) -> ModelParams {
        self.variant = v;
        self
    }

    /// Average number of page transfers per transaction:
    /// `c_t = (1−f_u)·c_r + f_u·c_u` (§5).
    #[must_use]
    pub fn per_txn(&self, c_r: f64, c_u: f64) -> f64 {
        (1.0 - self.f_u) * c_r + self.f_u * c_u
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_5() {
        let p = ModelParams::paper_defaults(Workload::HighUpdate);
        assert_eq!(p.b, 300.0);
        assert_eq!(p.s_total, 5000.0);
        assert_eq!(p.n, 10.0);
        assert_eq!(p.p, 6.0);
        assert_eq!(p.p_b, 0.01);
        assert_eq!(p.t, 5.0e6);
        assert_eq!((p.s, p.f_u, p.p_u), (10.0, 0.8, 0.9));
        assert_eq!(p.record.d, 3.0);
        let p = ModelParams::paper_defaults(Workload::HighRetrieval);
        assert_eq!((p.s, p.f_u, p.p_u), (40.0, 0.1, 0.3));
        assert_eq!(p.record.d, 8.0);
        assert_eq!(p.record.l_p, 2020.0);
    }

    #[test]
    fn builders() {
        let p = ModelParams::paper_defaults(Workload::HighUpdate)
            .communality(0.5)
            .pages_per_txn(25.0)
            .group_size(20.0)
            .variant(ModelVariant::PaperLiteral);
        assert_eq!(p.c, 0.5);
        assert_eq!(p.s, 25.0);
        assert_eq!(p.n, 20.0);
        assert_eq!(p.variant, ModelVariant::PaperLiteral);
    }

    #[test]
    #[should_panic(expected = "communality")]
    fn bad_communality_rejected() {
        let _ = ModelParams::paper_defaults(Workload::HighUpdate).communality(1.5);
    }

    #[test]
    fn per_txn_mixes_costs() {
        let p = ModelParams::paper_defaults(Workload::HighUpdate);
        // f_u = 0.8: c_t = 0.2·10 + 0.8·100 = 82.
        assert!((p.per_txn(10.0, 100.0) - 82.0).abs() < 1e-12);
    }
}
