//! Shared analytic primitives (§5.1, §5.2.2, §5.3, appendix).

use crate::{ModelParams, ModelVariant};

/// §5.1, equation (5): probability that an updated page must still be
/// UNDO-logged under RDA recovery.
///
/// `K` pages modified by active transactions are assumed uniformly
/// distributed over a database of `S` pages grouped into parity groups of
/// `N`; one page per *touched* group can ride the parity, so with
/// `X = (S/N)·(1 − (1 − N/S)^K)` groups touched in expectation,
///
/// ```text
/// p_l = 1 − E[X]/K = 1 − (S/(K·N))·(1 − (1 − N/S)^K)
/// ```
#[must_use]
pub fn p_l(k: f64, n: f64, s_total: f64) -> f64 {
    if k <= 1.0 {
        // A single modified page always finds its group clean.
        return 0.0;
    }
    let groups = s_total / n;
    let touched = groups * (1.0 - (1.0 - n / s_total).powf(k));
    (1.0 - touched / k).clamp(0.0, 1.0)
}

/// §5.2.2: probability that a replaced buffer page is modified, under
/// ¬FORCE. A page is referenced `1/(1−C)` times during its buffer life and
/// each reference is an update with probability `f_u·p_u`:
///
/// ```text
/// p_m = 1 − (1 − f_u·p_u)^{1/(1−C)}
/// ```
#[must_use]
pub fn p_m(f_u: f64, p_u: f64, c: f64) -> f64 {
    if c >= 1.0 {
        // Infinite buffer residence: the page is modified almost surely.
        return 1.0;
    }
    1.0 - (1.0 - f_u * p_u).powf(1.0 / (1.0 - c))
}

/// §5.2.2: probability that a given page is stolen from the buffer before
/// EOT. The other `P − 1` transactions generate `(1−C)·s·(P−1)` misses,
/// each replacing one of the `B − C·s` candidate frames:
///
/// ```text
/// p_s = 1 − (1 − 1/(B − C·s))^{(1−C)·s·(P−1)}
/// ```
#[must_use]
pub fn p_s(b: f64, c: f64, s: f64, p: f64) -> f64 {
    let frames = b - c * s;
    if frames <= 1.0 {
        return 1.0;
    }
    let misses = (1.0 - c) * s * (p - 1.0);
    1.0 - (1.0 - 1.0 / frames).powf(misses)
}

/// Appendix: expected number of distinct buffer pages modified by `k`
/// concurrent update transactions. The recurrence
/// `S(j) = S(j−1) + s·p_u·(1 − C·S(j−1)/B)`, `S(0) = 0`, solves to
///
/// ```text
/// s_u = (B/C)·(1 − (1 − C·s·p_u/B)^k)
/// ```
///
/// The paper's *printed* closed form omits the `1/C` factor (inconsistent
/// with its own recurrence at `k = 1`); [`ModelVariant::PaperLiteral`]
/// reproduces it anyway.
#[must_use]
pub fn s_u(params: &ModelParams, k: f64) -> f64 {
    let ModelParams { b, c, s, p_u, .. } = *params;
    let per_txn = s * p_u;
    if c <= f64::EPSILON {
        // limit C → 0: every transaction's pages are distinct.
        return k * per_txn;
    }
    let base = (1.0 - c * per_txn / b).powf(k);
    match params.variant {
        ModelVariant::Reconstructed => (b / c) * (1.0 - base),
        ModelVariant::PaperLiteral => b * (1.0 - base),
    }
}

/// §5.3: average log entry length under record logging. Each of the `d`
/// update statements produces one long entry of `r` bytes; the remaining
/// `s − d` accesses produce short entries of `e` bytes:
///
/// ```text
/// L = (d·r + (s − d)·e) / s
/// ```
/// The paper assumes `s > d`; for sweeps that push `s` below `d` the
/// statement count is clamped to `s` (a transaction cannot issue more
/// update statements than accesses).
#[must_use]
pub fn avg_log_entry(d: f64, r: f64, e: f64, s: f64) -> f64 {
    let d = d.min(s);
    (d * r + (s - d) * e) / s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    #[test]
    fn p_l_boundaries() {
        assert_eq!(p_l(0.0, 10.0, 5000.0), 0.0);
        assert_eq!(p_l(1.0, 10.0, 5000.0), 0.0);
        // All pages in one group: K = N pages → exactly one rides.
        let dense = p_l(10.0, 10.0, 10.0);
        assert!((dense - 0.9).abs() < 1e-9, "{dense}");
        // Sparse database: collisions vanish.
        assert!(p_l(5.0, 10.0, 1.0e9) < 1e-6);
    }

    #[test]
    fn p_l_monotone_in_k() {
        let mut prev = 0.0;
        for k in [2.0, 5.0, 10.0, 50.0, 200.0] {
            let v = p_l(k, 10.0, 5000.0);
            assert!(v >= prev, "p_l must grow with contention");
            prev = v;
        }
    }

    #[test]
    fn p_l_paper_point() {
        // High-update A1: K = P·f_u·s·p_u/2 = 21.6 → small p_l.
        let v = p_l(21.6, 10.0, 5000.0);
        assert!(v > 0.01 && v < 0.05, "{v}");
    }

    #[test]
    fn p_m_behaviour() {
        assert!((p_m(0.8, 0.9, 0.0) - 0.72).abs() < 1e-12);
        assert!(p_m(0.8, 0.9, 0.9) > 0.99);
        assert_eq!(p_m(0.8, 0.9, 1.0), 1.0);
        assert!(p_m(0.1, 0.3, 0.5) < p_m(0.8, 0.9, 0.5));
    }

    #[test]
    fn p_s_behaviour() {
        // No misses → nothing stolen.
        assert_eq!(p_s(300.0, 1.0, 10.0, 6.0), 0.0);
        // Tiny buffer → certainly stolen.
        assert_eq!(p_s(5.0, 0.5, 10.0, 6.0), 1.0);
        let lo = p_s(300.0, 0.9, 10.0, 6.0);
        let hi = p_s(300.0, 0.1, 10.0, 6.0);
        assert!(hi > lo, "more misses steal more");
        assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
    }

    #[test]
    fn s_u_matches_recurrence() {
        let params = crate::ModelParams::paper_defaults(Workload::HighUpdate).communality(0.7);
        let k = 4.0;
        // Iterate the appendix recurrence directly.
        let per = params.s * params.p_u;
        let mut s_rec = 0.0;
        for _ in 0..k as usize {
            s_rec += per * (1.0 - params.c * s_rec / params.b);
        }
        let closed = s_u(&params, k);
        assert!(
            (closed - s_rec).abs() < 1e-9,
            "closed {closed} vs recurrence {s_rec}"
        );
    }

    #[test]
    fn s_u_limit_c_zero() {
        let params = crate::ModelParams::paper_defaults(Workload::HighUpdate).communality(0.0);
        assert!((s_u(&params, 4.8) - 4.8 * 9.0).abs() < 1e-9);
    }

    #[test]
    fn s_u_paper_literal_differs() {
        let rec = crate::ModelParams::paper_defaults(Workload::HighUpdate).communality(0.5);
        let lit = rec.variant(crate::ModelVariant::PaperLiteral);
        let a = s_u(&rec, 4.8);
        let b = s_u(&lit, 4.8);
        assert!(
            (a - 2.0 * b).abs() < 1e-9,
            "literal drops the 1/C = 2 factor"
        );
    }

    #[test]
    fn avg_log_entry_paper_values() {
        // High update: d=3, s=10 → L = (300 + 70)/10 = 37.
        assert!((avg_log_entry(3.0, 100.0, 10.0, 10.0) - 37.0).abs() < 1e-12);
        // High retrieval: d=8, s=40 → L = (800 + 320)/40 = 28.
        assert!((avg_log_entry(8.0, 100.0, 10.0, 40.0) - 28.0).abs() < 1e-12);
    }
}
