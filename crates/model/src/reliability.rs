//! Reliability arithmetic from the paper's introduction (§1).
//!
//! The motivation for redundant arrays: with per-disk MTTF of 30,000 hours
//! (the paper's footnote 1), an organization with 50 disks sees a media
//! failure with a mean time to failure of less than 25 days. Mirroring fixes availability at 100% storage overhead; RAID
//! gets close at (100/N)%. These standard exponential-failure formulas
//! quantify the paper's Table-0 argument and let the `reliability` binary
//! tabulate it.
//!
//! Model: independent disk failures at rate `λ = 1/MTTF_disk`, repair
//! (rebuild onto a spare) at rate `μ = 1/MTTR`. Data is lost when a second
//! disk of the same group fails during a rebuild window (the classic
//! RAID-5 MTTDL approximation, Patterson et al. 1988).

/// The paper's per-disk MTTF assumption (hours).
pub const PAPER_DISK_MTTF_HOURS: f64 = 30_000.0;

/// Mean time to *any* disk failure in a farm of `disks` disks (hours):
/// `MTTF_disk / disks`.
#[must_use]
pub fn mttf_any_disk(disk_mttf: f64, disks: u32) -> f64 {
    assert!(disks > 0, "a farm needs at least one disk");
    disk_mttf / f64::from(disks)
}

/// Mean time to data loss of one parity group of `n_plus` disks (data +
/// parity) with rebuild time `mttr` hours (RAID-5 approximation):
/// `MTTF² / (G·(G−1)·MTTR)` for a group of `G` disks.
#[must_use]
pub fn mttdl_group(disk_mttf: f64, group_disks: u32, mttr: f64) -> f64 {
    assert!(group_disks >= 2, "parity needs at least two disks");
    let g = f64::from(group_disks);
    disk_mttf * disk_mttf / (g * (g - 1.0) * mttr)
}

/// Mean time to data loss of a whole array of `groups` independent parity
/// groups.
#[must_use]
pub fn mttdl_array(disk_mttf: f64, group_disks: u32, groups: u32, mttr: f64) -> f64 {
    assert!(groups > 0);
    mttdl_group(disk_mttf, group_disks, mttr) / f64::from(groups)
}

/// Expected media-failure *events* per year for a farm of `disks` disks
/// (each survivable with redundancy, but each costing a rebuild).
#[must_use]
pub fn failures_per_year(disk_mttf: f64, disks: u32) -> f64 {
    const HOURS_PER_YEAR: f64 = 24.0 * 365.25;
    HOURS_PER_YEAR / mttf_any_disk(disk_mttf, disks)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's footnote: 50 disks at 30,000 h MTTF → mean time to a
    /// media failure under 25 days.
    #[test]
    fn paper_claim_25_days_for_50_disks() {
        let hours = mttf_any_disk(PAPER_DISK_MTTF_HOURS, 50);
        let days = hours / 24.0;
        assert!((days - 25.0).abs() < 1e-9, "got {days} days");
    }

    #[test]
    fn farm_mttf_scales_inversely() {
        let one = mttf_any_disk(30_000.0, 1);
        let ten = mttf_any_disk(30_000.0, 10);
        assert!((one / ten - 10.0).abs() < 1e-12);
    }

    #[test]
    fn mttdl_dwarfs_raw_mttf() {
        // An 11-disk group (N = 10 + parity) rebuilt in 24 h survives data
        // loss an order of magnitude longer than a single disk survives
        // failure: 30000²/(11·10·24) ≈ 341k hours ≈ 11.4 × MTTF.
        let mttdl = mttdl_group(30_000.0, 11, 24.0);
        assert!(mttdl > 10.0 * 30_000.0, "mttdl = {mttdl}");
    }

    #[test]
    fn mttdl_degrades_with_slow_rebuild_and_more_groups() {
        let fast = mttdl_array(30_000.0, 11, 50, 8.0);
        let slow = mttdl_array(30_000.0, 11, 50, 80.0);
        assert!((fast / slow - 10.0).abs() < 1e-9);
        let one_group = mttdl_array(30_000.0, 11, 1, 24.0);
        let fifty = mttdl_array(30_000.0, 11, 50, 24.0);
        assert!((one_group / fifty - 50.0).abs() < 1e-9);
    }

    #[test]
    fn failure_events_per_year() {
        // 50 disks → ~14.6 rebuild events a year; exactly why §1 wants
        // recovery without operator intervention.
        let events = failures_per_year(PAPER_DISK_MTTF_HOURS, 50);
        assert!((events - 14.61).abs() < 0.01, "events = {events}");
    }
}
