//! Structured event tracing, end to end: run a commit, strand an
//! uncommitted transaction whose pages were stolen to the array, crash,
//! recover — then pretty-print what the observability layer saw:
//!
//! 1. the **event trace** — steals, twin flips, parity UNDOs, disk I/O,
//!    stamped with the global I/O clock;
//! 2. the **recovery timeline** — per-phase billed reads/writes and
//!    wall-clock for intent replay, parity vs log UNDO, REDO and the
//!    Current_Parity bitmap scan;
//! 3. the **metrics registry** — counter snapshot in Prometheus text.
//!
//! Run with: `cargo run --example trace`

use rda::core::{Database, DbConfig, EngineKind, EventKind};

fn main() {
    // A tiny 2-frame buffer guarantees the loser's pages are stolen to
    // the array before the crash, so recovery has real parity UNDO work.
    let mut cfg = DbConfig::small_test(EngineKind::Rda).trace(4096);
    cfg.buffer.frames = 2;
    let db = Database::open(cfg);

    // A committed transaction: its writes must survive the crash.
    let mut tx = db.begin();
    tx.write(0, b"durable-a").unwrap();
    tx.write(5, b"durable-b").unwrap();
    tx.commit().unwrap();

    // A doomed transaction: write enough pages through the tiny buffer
    // that earlier ones are stolen (parity-protected) to disk, then lose
    // the machine before commit.
    let mut tx = db.begin();
    for p in [1u32, 6, 9, 13] {
        tx.write(p, &[0xEE; 8]).unwrap();
    }
    std::mem::forget(tx); // a real client just vanishes in the crash
    db.crash();

    let report = db.recover().expect("restart recovery");

    println!("=== event trace (commit, crash, restart) ===");
    let snap = db.trace_snapshot();
    for ev in &snap.events {
        let tag = match ev.kind {
            EventKind::DiskRead { .. } | EventKind::DiskWrite { .. } => "  ",
            _ => "* ",
        };
        println!("{tag}{ev}");
    }
    if snap.dropped > 0 {
        println!("  ({} older events dropped from the ring)", snap.dropped);
    }

    println!();
    println!("=== recovery timeline ===");
    println!(
        "winners {}  losers {}  undone via parity {}  via log {}  pages scanned {}",
        report.winners.len(),
        report.losers.len(),
        report.undone_via_parity,
        report.undone_via_log,
        report.pages_scanned,
    );
    for ph in &report.timeline.phases {
        println!(
            "  {:<13} {:>3} reads {:>3} writes  {:>6} us",
            ph.phase.name(),
            ph.reads,
            ph.writes,
            ph.wall.as_micros()
        );
    }

    println!();
    println!("=== metrics ===");
    print!("{}", db.metrics_prometheus());

    // The committed transaction survived; the loser is gone.
    assert_eq!(&db.read_page(0).unwrap()[..9], b"durable-a");
    assert_eq!(&db.read_page(5).unwrap()[..9], b"durable-b");
    assert_ne!(db.read_page(1).unwrap()[0], 0xEE);
}
