//! A miniature banking OLTP workload — the class of system the paper's
//! introduction motivates ("large scale database systems ... requiring
//! high availability ... on-line transaction processing").
//!
//! 64 accounts live one-per-page on a twin-parity array. Transfer
//! transactions move money between accounts; some abort mid-flight; a
//! crash hits the system in the middle of the day. The invariant — total
//! money is conserved — must survive every abort and the crash, with the
//! RDA engine doing its UNDO through the parity array.
//!
//! Run with: `cargo run --example bank_oltp`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rda::array::{ArrayConfig, Organization};
use rda::buffer::{BufferConfig, ReplacePolicy};
use rda::core::{
    CheckpointPolicy, Database, DbConfig, EngineKind, EotPolicy, LogGranularity, ProtocolMutations,
};
use rda::wal::LogConfig;

const ACCOUNTS: u32 = 64;
const INITIAL_BALANCE: u64 = 1_000;

fn encode(balance: u64) -> [u8; 8] {
    balance.to_be_bytes()
}

fn decode(page: &[u8]) -> u64 {
    u64::from_be_bytes(page[..8].try_into().expect("8 bytes"))
}

fn total(db: &Database) -> u64 {
    (0..ACCOUNTS)
        .map(|a| decode(&db.read_page(a).unwrap()))
        .sum()
}

fn main() {
    let cfg = DbConfig {
        engine: EngineKind::Rda,
        array: ArrayConfig::new(Organization::RotatedParity, 8, 8)
            .twin(true)
            .page_size(64),
        // A deliberately small buffer so uncommitted transfers get stolen
        // to disk and the parity UNDO path is exercised for real.
        buffer: BufferConfig {
            frames: 12,
            steal: true,
            policy: ReplacePolicy::Clock,
        },
        log: LogConfig::default(),
        granularity: LogGranularity::Page,
        eot: EotPolicy::NoForce,
        checkpoint: CheckpointPolicy::AccEvery { ops: 64 },
        strict_read_locks: false,
        trace_events: 0,
        span_events: false,
        mutations: ProtocolMutations::default(),
        shards: 1,
        group_commit: None,
    };
    let db = Database::open(cfg);

    // Fund the accounts.
    let mut tx = db.begin();
    for account in 0..ACCOUNTS {
        tx.write(account, &encode(INITIAL_BALANCE)).expect("fund");
    }
    tx.commit().expect("initial funding");
    let expected_total = u64::from(ACCOUNTS) * INITIAL_BALANCE;
    assert_eq!(total(&db), expected_total);

    let mut rng = StdRng::seed_from_u64(2026);
    let mut committed = 0u32;
    let mut aborted = 0u32;

    for round in 0..400 {
        let from = rng.gen_range(0..ACCOUNTS);
        let to = {
            let mut t = rng.gen_range(0..ACCOUNTS);
            while t == from {
                t = rng.gen_range(0..ACCOUNTS);
            }
            t
        };
        let amount = rng.gen_range(1..50u64);

        let mut tx = db.begin();
        let from_balance = decode(&tx.read(from).expect("read"));
        if from_balance < amount {
            tx.abort().expect("insufficient funds abort");
            aborted += 1;
            continue;
        }
        let to_balance = decode(&tx.read(to).expect("read"));
        tx.write(from, &encode(from_balance - amount))
            .expect("debit");
        tx.write(to, &encode(to_balance + amount)).expect("credit");

        // A few transfers fail after doing their writes (client timeout,
        // constraint violation, ...) — classic mid-flight aborts.
        if rng.gen_bool(0.07) {
            tx.abort().expect("rollback");
            aborted += 1;
        } else {
            tx.commit().expect("commit");
            committed += 1;
        }

        // Lights out at round 250, mid-workload.
        if round == 250 {
            let report = db.crash_and_recover().expect("restart");
            println!(
                "crash at round {round}: {} losers undone ({} via parity, {} via log), {} redo writes",
                report.losers.len(),
                report.undone_via_parity,
                report.undone_via_log,
                report.redone
            );
            assert_eq!(
                total(&db),
                expected_total,
                "money conserved across the crash"
            );
        }
    }

    assert_eq!(total(&db), expected_total, "money conserved");
    assert!(db.verify().expect("scrub").is_empty());

    let stats = db.stats();
    println!("{committed} transfers committed, {aborted} aborted");
    println!(
        "I/O bill: {} array transfers, {} log transfers ({} log bytes), hit ratio {:.2}",
        stats.array.transfers(),
        stats.log.transfers(),
        db.log_bytes(),
        stats.buffer.hit_ratio()
    );
    println!("total money: {} ✓", total(&db));
}
