//! Bounded crashpoint exploration, end to end: take a small mixed
//! commit/abort workload, crash it at *every* physical I/O, run restart
//! recovery from each crashpoint, and verify each survivor against the
//! invariant auditor, the parity scrub, and an exact durability oracle.
//!
//! Prints the JSON report on stdout and exits non-zero if any crashpoint
//! fails verification — CI runs this as the crashpoint smoke job.
//!
//! Run with: `cargo run --release --example crashpoint [-- --workers N]`
//!
//! `--workers N` fans the replays over an N-thread pool; the tool always
//! runs the sequential sweep first and prints both wall-clocks (and
//! asserts the two reports are byte-identical) so the speedup — and the
//! determinism claim backing it — is visible from the quickstart.

use rda::core::{DbConfig, EngineKind};
use rda::faults::{explore, ExploreMode, ExplorerConfig};
use rda::sim::{Trace, WorkloadSpec};
use std::time::Instant;

/// CI bound: the workload must stay exhaustive under this many I/Os so
/// every single crashpoint is actually visited.
const IO_BOUND: u64 = 200;

/// Parse `--workers N` (or `--workers=N`) from the command line.
/// Returns `None` when absent; exits with usage on malformed input.
fn workers_arg() -> Option<usize> {
    let mut args = std::env::args().skip(1);
    let arg = args.next()?;
    let value = if arg == "--workers" {
        args.next()
    } else {
        arg.strip_prefix("--workers=").map(str::to_string)
    };
    match (value.as_deref().map(str::parse::<usize>), args.next()) {
        (Some(Ok(n)), None) if n > 0 => Some(n),
        _ => {
            eprintln!("usage: crashpoint [--workers N]");
            std::process::exit(2);
        }
    }
}

fn main() {
    let workers = workers_arg();
    // Stderr only: the stdout report JSON must stay byte-identical
    // whatever backend banner we print.
    eprintln!("backend: simulated array (in-memory)");

    // A handful of short update transactions over a 32-page database,
    // with one scripted abort in the mix.
    let mut spec = WorkloadSpec::high_update(32, 8);
    spec.s = 3;
    spec.f_u = 1.0;
    spec.p_u = 1.0;
    spec.p_b = 0.0;
    let mut trace = Trace::generate(spec, 4, 0x00C0_FFEE);
    trace.scripts[1].aborts = true;

    let cfg = ExplorerConfig {
        exhaustive_limit: IO_BOUND,
        workers: 1,
        ..ExplorerConfig::new(ExploreMode::Crash)
    };
    let db_cfg = DbConfig::small_test(EngineKind::Rda);
    let seq_start = Instant::now();
    let report = explore(&db_cfg, &trace.scripts, &cfg);
    let seq_wall = seq_start.elapsed();

    if let Some(workers) = workers {
        let par_start = Instant::now();
        let parallel = explore(&db_cfg, &trace.scripts, &ExplorerConfig { workers, ..cfg });
        let par_wall = par_start.elapsed();
        assert_eq!(
            report.to_json(),
            parallel.to_json(),
            "parallel report diverged from the sequential sweep"
        );
        eprintln!(
            "sequential sweep: {:.1?}; {workers}-worker sweep: {:.1?} ({:.2}x); reports byte-identical",
            seq_wall,
            par_wall,
            seq_wall.as_secs_f64() / par_wall.as_secs_f64().max(1e-9),
        );
    }

    println!("{}", report.to_json());
    eprintln!(
        "explored {} crashpoint(s) over {} I/Os ({}), {} committed in the golden run, {} failure(s)",
        report.points.len(),
        report.total_ios,
        if report.exhaustive {
            "exhaustive"
        } else {
            "sampled"
        },
        report.golden_committed,
        report.failures().len(),
    );

    assert!(
        report.exhaustive,
        "workload outgrew the {IO_BOUND}-I/O smoke bound ({} I/Os) — shrink it",
        report.total_ios
    );
    for v in &report.golden_violations {
        eprintln!("golden run violation: {v}");
    }
    for p in report.failures() {
        eprintln!("crashpoint {} FAILED: {:?}", p.io_index, p.violations);
    }
    if !report.is_clean() {
        std::process::exit(1);
    }
}
