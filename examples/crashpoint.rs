//! Bounded crashpoint exploration, end to end: take a small mixed
//! commit/abort workload, crash it at *every* physical I/O, run restart
//! recovery from each crashpoint, and verify each survivor against the
//! invariant auditor, the parity scrub, and an exact durability oracle.
//!
//! Prints the JSON report on stdout and exits non-zero if any crashpoint
//! fails verification — CI runs this as the crashpoint smoke job.
//!
//! Run with: `cargo run --release --example crashpoint`

use rda::core::{DbConfig, EngineKind};
use rda::faults::{explore, ExploreMode, ExplorerConfig};
use rda::sim::{Trace, WorkloadSpec};

/// CI bound: the workload must stay exhaustive under this many I/Os so
/// every single crashpoint is actually visited.
const IO_BOUND: u64 = 200;

fn main() {
    // A handful of short update transactions over a 32-page database,
    // with one scripted abort in the mix.
    let mut spec = WorkloadSpec::high_update(32, 8);
    spec.s = 3;
    spec.f_u = 1.0;
    spec.p_u = 1.0;
    spec.p_b = 0.0;
    let mut trace = Trace::generate(spec, 4, 0x00C0_FFEE);
    trace.scripts[1].aborts = true;

    let cfg = ExplorerConfig {
        exhaustive_limit: IO_BOUND,
        ..ExplorerConfig::new(ExploreMode::Crash)
    };
    let report = explore(&DbConfig::small_test(EngineKind::Rda), &trace.scripts, &cfg);

    println!("{}", report.to_json());
    eprintln!(
        "explored {} crashpoint(s) over {} I/Os ({}), {} committed in the golden run, {} failure(s)",
        report.points.len(),
        report.total_ios,
        if report.exhaustive {
            "exhaustive"
        } else {
            "sampled"
        },
        report.golden_committed,
        report.failures().len(),
    );

    assert!(
        report.exhaustive,
        "workload outgrew the {IO_BOUND}-I/O smoke bound ({} I/Os) — shrink it",
        report.total_ios
    );
    for v in &report.golden_violations {
        eprintln!("golden run violation: {v}");
    }
    for p in report.failures() {
        eprintln!("crashpoint {} FAILED: {:?}", p.io_index, p.violations);
    }
    if !report.is_clean() {
        std::process::exit(1);
    }
}
