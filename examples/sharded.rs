//! Sharded engine + group commit: N independent shards (each a complete
//! engine with its own lock table, WAL, and parity sub-array), pages
//! routed to shards by parity group, cross-shard transactions committed
//! through a durable-intent 2PC, and commit log forces batched by the
//! group-commit gate.
//!
//! Run with: `cargo run --example sharded`

use rda::core::{DbConfig, EngineKind, GroupCommit, ShardedDb};

fn main() {
    // Four shards; commits batched through a 100µs group-commit window.
    let cfg = DbConfig::small_test(EngineKind::Rda)
        .shards(4)
        .group_commit(GroupCommit {
            window_micros: 100,
            max_batch: 8,
        });
    let db = ShardedDb::open(cfg);
    println!(
        "{} shards, {} data pages",
        db.shard_count(),
        db.data_pages()
    );

    // --- single-shard fast path ------------------------------------------
    // Page 0 lives in shard 0; this transaction never touches another
    // shard's locks.
    let mut tx = db.begin();
    tx.write(0, b"shard 0").expect("write");
    tx.commit().expect("commit");

    // --- cross-shard 2PC ---------------------------------------------------
    // Pages 1 and 5 live in different shards: the coordinator stages a
    // durable intent, then commits shard-by-shard in ascending order.
    let mut tx = db.begin();
    tx.write(1, b"shard 0").expect("write");
    tx.write(5, b"shard 1").expect("write");
    println!("touches shards {:?}", tx.shards_touched());
    tx.commit().expect("cross-shard commit");

    // --- crash + restart ----------------------------------------------------
    // Each shard recovers independently (in parallel), then any decided
    // but unapplied cross-shard intents are replayed.
    let report = db.crash_and_recover().expect("restart recovery");
    println!(
        "recovered {} shards, {} intents replayed",
        report.reports.len(),
        report.replayed.len()
    );
    assert_eq!(&db.read_page(0).unwrap()[..7], b"shard 0");
    assert_eq!(&db.read_page(5).unwrap()[..7], b"shard 1");

    let stats = db.stats();
    println!(
        "cross-shard commits: {}, aborts: {}",
        stats.cross_shard_commits, stats.cross_shard_aborts
    );
}
