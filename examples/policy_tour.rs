//! A tour of the paper's design space: run the *same* workload under all
//! four algorithm families (page/record logging × FORCE-TOC/¬FORCE-ACC),
//! each with the RDA engine and with the WAL baseline, and print the
//! measured I/O bill side by side — the experimental companion to the
//! analytical Figures 9–12.
//!
//! Run with: `cargo run --release --example policy_tour`

use rda::core::{CheckpointPolicy, DbConfig, EngineKind, EotPolicy, LogGranularity};
use rda::sim::{run_workload, SimConfig, WorkloadSpec};

fn family_cfg(engine: EngineKind, granularity: LogGranularity, eot: EotPolicy) -> DbConfig {
    let mut cfg = DbConfig::paper_like(engine, 1000, 100);
    cfg.granularity = granularity;
    cfg.eot = eot;
    cfg.checkpoint = match eot {
        EotPolicy::Force => CheckpointPolicy::Manual,
        EotPolicy::NoForce => CheckpointPolicy::AccEvery { ops: 500 },
    };
    cfg
}

fn main() {
    let spec = WorkloadSpec::high_update(1000, 80).locality(0.85);
    let families: [(&str, LogGranularity, EotPolicy); 4] = [
        (
            "A1 page  / FORCE,TOC ",
            LogGranularity::Page,
            EotPolicy::Force,
        ),
        (
            "A2 page  / ¬FORCE,ACC",
            LogGranularity::Page,
            EotPolicy::NoForce,
        ),
        (
            "A3 record/ FORCE,TOC ",
            LogGranularity::Record,
            EotPolicy::Force,
        ),
        (
            "A4 record/ ¬FORCE,ACC",
            LogGranularity::Record,
            EotPolicy::NoForce,
        ),
    ];

    println!(
        "{:<24} {:>12} {:>12} {:>10} {:>9}",
        "family", "¬RDA c_t", "RDA c_t", "gain", "meas. C"
    );
    for (name, granularity, eot) in families {
        let run = |engine| {
            let mut sim = SimConfig::new(family_cfg(engine, granularity, eot));
            sim.concurrency = 6;
            sim.warmup = 60;
            // The oracle is page-granularity; skip content verification for
            // record mode (the parity scrub still runs in the engine tests).
            sim.verify = granularity == LogGranularity::Page;
            run_workload(&sim, &spec, 300)
        };
        let wal = run(EngineKind::Wal);
        let rda = run(EngineKind::Rda);
        let gain = wal.transfers_per_committed / rda.transfers_per_committed - 1.0;
        println!(
            "{:<24} {:>12.1} {:>12.1} {:>9.1}% {:>9.2}",
            name,
            wal.transfers_per_committed,
            rda.transfers_per_committed,
            gain * 100.0,
            rda.measured_c
        );
    }
    println!("\n(transfers per committed transaction, measured on the real engine;");
    println!(" compare the shapes against the model's Figures 9–12 binaries)");
}
