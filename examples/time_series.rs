//! An ordered time-series log on the `rda-kv` B+-tree: sensor readings
//! keyed by timestamp, range-queried by window, surviving aborts and a
//! crash — ordered access on top of the paper's recovery machinery.
//!
//! Run with: `cargo run --example time_series`

use rda::core::{Database, DbConfig, EngineKind, LogGranularity};
use rda_kv::BTree;

fn key(ts: u64) -> [u8; 8] {
    ts.to_be_bytes() // big-endian sorts numerically
}

fn main() {
    let mut cfg =
        DbConfig::paper_like(EngineKind::Rda, 400, 48).granularity(LogGranularity::Record);
    cfg.array.page_size = 256;
    let tree = BTree::create(Database::open(cfg)).expect("format");

    // A day of readings, one per "minute", written in hourly batches.
    for hour in 0..24u64 {
        let mut tx = tree.db().begin();
        for minute in 0..60u64 {
            let ts = hour * 3600 + minute * 60;
            let reading = format!("{:.1}", 20.0 + (ts as f64 / 7000.0).sin() * 5.0);
            tree.insert(&mut tx, &key(ts), reading.as_bytes())
                .expect("insert");
        }
        tx.commit().expect("hourly batch");
    }
    println!("ingested 24 hourly batches (1440 readings)");

    // A bad batch gets rolled back.
    let mut tx = tree.db().begin();
    for minute in 0..30u64 {
        tree.insert(&mut tx, &key(90_000 + minute * 60), b"GARBAGE")
            .expect("insert");
    }
    tx.abort().expect("reject bad batch");

    // The collector crashes mid-batch.
    let mut tx = tree.db().begin();
    for minute in 0..30u64 {
        tree.insert(&mut tx, &key(95_000 + minute * 60), b"LOST")
            .expect("insert");
    }
    std::mem::forget(tx);
    let report = tree.db().crash_and_recover().expect("restart");
    println!(
        "collector crash: {} losers undone ({} via parity, {} via log)",
        report.losers.len(),
        report.undone_via_parity,
        report.undone_via_log
    );

    // Window query: 06:00–08:00.
    let tree = BTree::open(tree.db().clone()).expect("reopen");
    let mut tx = tree.db().begin();
    let window = tree
        .range(&mut tx, &key(6 * 3600), &key(8 * 3600))
        .expect("range query");
    println!("06:00–08:00 window: {} readings", window.len());
    assert_eq!(window.len(), 120);
    // Ordered, and none of the garbage survived.
    for pair in window.windows(2) {
        assert!(pair[0].0 < pair[1].0);
    }
    let all = tree.scan_all(&mut tx).expect("scan");
    assert_eq!(all.len(), 1440, "exactly the committed readings");
    assert!(all.iter().all(|(_, v)| v != b"GARBAGE" && v != b"LOST"));
    tx.abort().expect("read txn");

    assert!(tree.db().verify().expect("scrub").is_empty());
    println!("1440 committed readings intact, ordered, parity clean ✓");
}
