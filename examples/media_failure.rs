//! Media recovery — the failure mode redundant arrays were built for
//! (paper §1: archive-based media recovery "is prohibitive for many
//! applications ... redundant disk arrays provide an alternative").
//!
//! We load a database, kill one disk outright, keep serving reads in
//! degraded mode (XOR reconstruction through the committed parity twin),
//! then rebuild onto a replacement drive and verify every page — twice,
//! once for each array organization the paper studies.
//!
//! Run with: `cargo run --example media_failure`

use rda::array::{ArrayConfig, Organization};
use rda::buffer::{BufferConfig, ReplacePolicy};
use rda::core::{
    CheckpointPolicy, Database, DbConfig, EngineKind, EotPolicy, LogGranularity, ProtocolMutations,
};
use rda::wal::LogConfig;

fn run(org: Organization) {
    println!("=== {org:?} ===");
    let cfg = DbConfig {
        engine: EngineKind::Rda,
        array: ArrayConfig::new(org, 6, 20).twin(true).page_size(128),
        buffer: BufferConfig {
            frames: 24,
            steal: true,
            policy: ReplacePolicy::Lru,
        },
        log: LogConfig::default(),
        granularity: LogGranularity::Page,
        eot: EotPolicy::Force,
        checkpoint: CheckpointPolicy::Manual,
        strict_read_locks: false,
        trace_events: 0,
        span_events: false,
        mutations: ProtocolMutations::default(),
        shards: 1,
        group_commit: None,
    };
    let db = Database::open(cfg);
    let pages = db.data_pages();

    // Load recognizable content.
    let mut tx = db.begin();
    for p in 0..pages {
        tx.write(p, format!("page-{p:04}").as_bytes())
            .expect("load");
    }
    tx.commit().expect("load commit");

    // Disk 2 dies.
    let before = db.stats();
    db.fail_disk(2);
    println!("disk 2 failed — serving degraded reads");

    // Degraded reads still return correct data (reconstruction costs N
    // transfers instead of 1).
    for p in (0..pages).step_by(7) {
        let got = db.read_page(p).expect("degraded read");
        assert_eq!(&got[..9], format!("page-{p:04}").as_bytes());
    }
    let degraded = db.stats().delta(&before);
    println!(
        "degraded sample reads cost {} transfers ({} reads)",
        degraded.array.transfers(),
        degraded.array.reads
    );

    // Updates keep flowing while degraded.
    let mut tx = db.begin();
    tx.write(3, b"updated-while-degraded")
        .expect("degraded write");
    tx.commit().expect("degraded commit");

    // Replace the drive and rebuild from the surviving group members.
    let before = db.stats();
    let rebuilt = db.media_recover(2).expect("rebuild");
    let bill = db.stats().delta(&before);
    println!(
        "rebuilt {rebuilt} blocks using {} transfers ({} reads, {} writes)",
        bill.array.transfers(),
        bill.array.reads,
        bill.array.writes
    );

    // Everything back, including the mid-outage update.
    for p in 0..pages {
        let got = db.read_page(p).expect("read after rebuild");
        if p == 3 {
            assert_eq!(&got[..22], b"updated-while-degraded");
        } else {
            assert_eq!(&got[..9], format!("page-{p:04}").as_bytes());
        }
    }
    assert!(db.verify().expect("scrub").is_empty());
    println!("all {pages} pages verified after rebuild ✓\n");
}

fn main() {
    run(Organization::RotatedParity);
    run(Organization::ParityStriping);
}
