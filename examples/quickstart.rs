//! Quickstart: open an RDA-recovered database, commit, abort, crash, and
//! watch the twin-parity machinery do the undo work that a conventional
//! engine would do from an UNDO log.
//!
//! Run with: `cargo run --example quickstart`

use rda::core::{Database, DbConfig, EngineKind};

fn main() {
    // A small twin-parity array: groups of 4 data pages + 2 parity pages,
    // page logging, FORCE at commit.
    let db = Database::open(DbConfig::small_test(EngineKind::Rda));

    // --- commit -----------------------------------------------------------
    let mut tx = db.begin();
    tx.write(0, b"alpha").expect("write");
    tx.write(5, b"beta").expect("write");
    let txid = tx.commit().expect("commit");
    println!("committed {txid:?}");
    println!(
        "page 0 = {:?}",
        String::from_utf8_lossy(&db.read_page(0).unwrap()[..5])
    );

    // --- abort: undone via the parity array -------------------------------
    let mut tx = db.begin();
    tx.write(0, b"oops!").expect("write");
    tx.abort().expect("abort");
    assert_eq!(&db.read_page(0).unwrap()[..5], b"alpha");
    println!("abort rolled page 0 back via D_old = (P ⊕ P') ⊕ D_new");

    // --- crash + restart ----------------------------------------------------
    let mut tx = db.begin();
    tx.write(1, b"never committed").expect("write");
    std::mem::forget(tx); // the handle dies with the crash
    let report = db.crash_and_recover().expect("restart recovery");
    println!(
        "recovered: {} winners, {} losers, {} pages undone via parity, {} via log",
        report.winners.len(),
        report.losers.len(),
        report.undone_via_parity,
        report.undone_via_log
    );
    assert_eq!(&db.read_page(0).unwrap()[..5], b"alpha");
    assert!(db.read_page(1).unwrap().iter().all(|&b| b == 0));

    // --- the bill ------------------------------------------------------------
    let stats = db.stats();
    println!(
        "total: {} array transfers, {} log transfers, buffer hit ratio {:.2}",
        stats.array.transfers(),
        stats.log.transfers(),
        stats.buffer.hit_ratio()
    );
    assert!(
        db.verify().expect("scrub").is_empty(),
        "parity invariants hold"
    );
    println!("parity scrub clean ✓");
}
