//! A user directory on the `rda-kv` record layer: the kind of application
//! a database built on this storage stack would serve. Every put/delete is
//! a byte-range transactional update; aborts and crashes are undone by the
//! twin-parity machinery (or the log, where a steal could not ride).
//!
//! Run with: `cargo run --example kv_directory`

use rda::core::{Database, DbConfig, EngineKind, LogGranularity};
use rda_kv::KvStore;

fn main() {
    let cfg = DbConfig::paper_like(EngineKind::Rda, 200, 24).granularity(LogGranularity::Record);
    let store = KvStore::create(Database::open(cfg), 16).expect("format store");

    // Load a directory.
    let mut tx = store.db().begin();
    for (user, role) in [
        ("ada", "architect"),
        ("grace", "compiler"),
        ("edsger", "verification"),
        ("barbara", "abstraction"),
        ("jim", "transactions"),
    ] {
        store
            .put(&mut tx, user.as_bytes(), role.as_bytes())
            .expect("put");
    }
    tx.commit().expect("load");
    println!("loaded 5 users");

    // A failed HR update: two changes that must be atomic.
    let mut tx = store.db().begin();
    store.put(&mut tx, b"jim", b"retired").expect("put");
    store.delete(&mut tx, b"edsger").expect("delete");
    tx.abort().expect("rollback");
    println!("HR batch aborted — directory unchanged");

    // Crash mid-update.
    let mut tx = store.db().begin();
    store.put(&mut tx, b"mallory", b"intruder").expect("put");
    std::mem::forget(tx);
    let report = store.db().crash_and_recover().expect("restart");
    println!(
        "crash: {} loser(s) undone ({} via parity, {} via log)",
        report.losers.len(),
        report.undone_via_parity,
        report.undone_via_log
    );

    // Reattach and audit.
    let store = KvStore::open(store.db().clone()).expect("reopen");
    let mut tx = store.db().begin();
    let mut all = store.scan(&mut tx).expect("scan");
    all.sort();
    println!("directory after abort + crash:");
    for (user, role) in &all {
        println!(
            "  {:10} {}",
            String::from_utf8_lossy(user),
            String::from_utf8_lossy(role)
        );
    }
    assert_eq!(all.len(), 5, "exactly the committed users survive");
    assert!(store.get(&mut tx, b"mallory").expect("get").is_none());
    assert_eq!(
        store.get(&mut tx, b"jim").expect("get").as_deref(),
        Some(&b"transactions"[..])
    );
    tx.abort().expect("read txn");
    assert!(store.db().verify().expect("scrub").is_empty());
    println!("parity scrub clean ✓");
}
