//! A tiny interactive shell over the database — poke at the twin-parity
//! machinery by hand, inject failures, watch the I/O bill.
//!
//! Run with: `cargo run --example repl`
//! or pipe a script: `printf 'begin\nwrite 3 hello\ncommit\nread 3\nquit\n' | cargo run --example repl`

use rda::core::{Database, DbConfig, EngineKind, Transaction};
use std::io::{self, BufRead, Write};

const HELP: &str = "\
commands:
  begin                     start a transaction (one at a time in this shell)
  write <page> <text>       write text to a page (inside a transaction)
  read <page>               read a page (inside or outside a transaction)
  commit | abort            end the transaction
  crash                     simulated power failure + restart recovery
  fail <disk>               fail a disk
  rebuild <disk>            media-recover a failed disk
  corrupt <page>            inject a latent sector error under a page
  scrub                     patrol-scrub the array
  verify                    check parity invariants
  stats                     show the I/O bill
  help                      this text
  quit";

fn main() {
    let db = Database::open(DbConfig::small_test(EngineKind::Rda));
    let mut tx: Option<Transaction> = None;
    println!(
        "rda repl — {} pages, twin-parity RDA engine. Type `help`.",
        db.data_pages()
    );

    let stdin = io::stdin();
    loop {
        print!("rda> ");
        io::stdout().flush().ok();
        let Some(Ok(line)) = stdin.lock().lines().next() else {
            break;
        };
        let mut parts = line.split_whitespace();
        let Some(cmd) = parts.next() else {
            continue;
        };
        let result: Result<String, String> = match cmd {
            "help" => Ok(HELP.to_string()),
            "quit" | "exit" => break,
            "begin" => {
                if tx.is_some() {
                    Err("a transaction is already open".into())
                } else {
                    let t = db.begin();
                    let id = t.id();
                    tx = Some(t);
                    Ok(format!("began {id}"))
                }
            }
            "write" => match (
                parts.next().and_then(|p| p.parse::<u32>().ok()),
                tx.as_mut(),
            ) {
                (Some(page), Some(t)) => {
                    let text: String = parts.collect::<Vec<_>>().join(" ");
                    t.write(page, text.as_bytes())
                        .map(|()| format!("wrote {} bytes to page {page}", text.len()))
                        .map_err(|e| e.to_string())
                }
                (None, _) => Err("usage: write <page> <text>".into()),
                (_, None) => Err("no open transaction — `begin` first".into()),
            },
            "read" => match parts.next().and_then(|p| p.parse::<u32>().ok()) {
                Some(page) => {
                    let bytes = match tx.as_mut() {
                        Some(t) => t.read(page),
                        None => db.read_page(page),
                    };
                    bytes
                        .map(|b| {
                            let printable: String = b
                                .iter()
                                .take_while(|&&c| c != 0)
                                .map(|&c| {
                                    if c.is_ascii_graphic() || c == b' ' {
                                        c as char
                                    } else {
                                        '.'
                                    }
                                })
                                .collect();
                            format!("page {page}: {printable:?}")
                        })
                        .map_err(|e| e.to_string())
                }
                None => Err("usage: read <page>".into()),
            },
            "commit" => match tx.take() {
                Some(t) => t
                    .commit()
                    .map(|id| format!("committed {id}"))
                    .map_err(|e| e.to_string()),
                None => Err("no open transaction".into()),
            },
            "abort" => match tx.take() {
                Some(t) => t
                    .abort()
                    .map(|()| "aborted (undone via parity where stolen)".to_string())
                    .map_err(|e| e.to_string()),
                None => Err("no open transaction".into()),
            },
            "crash" => {
                if let Some(t) = tx.take() {
                    std::mem::forget(t); // dies with the power
                }
                db.crash();
                db.recover()
                    .map(|r| {
                        format!(
                            "recovered: {} winners, {} losers ({} parity-undone, {} log-undone, {} redone)",
                            r.winners.len(),
                            r.losers.len(),
                            r.undone_via_parity,
                            r.undone_via_log,
                            r.redone
                        )
                    })
                    .map_err(|e| e.to_string())
            }
            "fail" => match parts.next().and_then(|p| p.parse::<u16>().ok()) {
                Some(d) => {
                    db.fail_disk(d);
                    Ok(format!("disk {d} failed — reads continue in degraded mode"))
                }
                None => Err("usage: fail <disk>".into()),
            },
            "rebuild" => match parts.next().and_then(|p| p.parse::<u16>().ok()) {
                Some(d) => db
                    .media_recover(d)
                    .map(|n| format!("rebuilt {n} blocks onto disk {d}"))
                    .map_err(|e| e.to_string()),
                None => Err("usage: rebuild <disk>".into()),
            },
            "corrupt" => match parts.next().and_then(|p| p.parse::<u32>().ok()) {
                Some(p) => {
                    db.corrupt_data_page(p);
                    Ok(format!("latent sector error injected under page {p}"))
                }
                None => Err("usage: corrupt <page>".into()),
            },
            "scrub" => db
                .scrub()
                .map(|r| {
                    format!(
                        "scanned {} pages; repaired {} data, {} parity",
                        r.pages_scanned, r.data_repaired, r.parity_repaired
                    )
                })
                .map_err(|e| e.to_string()),
            "verify" => db
                .verify()
                .map(|v| {
                    if v.is_empty() {
                        "parity invariants hold".to_string()
                    } else {
                        format!("VIOLATIONS: {v:?}")
                    }
                })
                .map_err(|e| e.to_string()),
            "stats" => {
                let s = db.stats();
                Ok(format!(
                    "array: {} reads / {} writes; log: {} writes ({} bytes); buffer hit ratio {:.2}",
                    s.array.reads,
                    s.array.writes,
                    s.log.writes,
                    db.log_bytes(),
                    s.buffer.hit_ratio()
                ))
            }
            other => Err(format!("unknown command {other:?} — try `help`")),
        };
        match result {
            Ok(msg) => println!("{msg}"),
            Err(msg) => println!("error: {msg}"),
        }
    }
    println!("bye");
}
