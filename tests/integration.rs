//! Workspace-level integration tests: drive the full stack through the
//! `rda` facade — array + WAL + buffer + engine + workload generator —
//! the way a downstream user would.

use rda::array::{ArrayConfig, Organization};
use rda::buffer::{BufferConfig, ReplacePolicy};
use rda::core::{
    CheckpointPolicy, Database, DbConfig, EngineKind, EotPolicy, LogGranularity, ProtocolMutations,
};
use rda::model::{families, ModelParams, Workload};
use rda::sim::{run_workload, SimConfig, WorkloadSpec};
use rda::wal::LogConfig;

fn engine_cfg(engine: EngineKind) -> DbConfig {
    DbConfig {
        engine,
        array: ArrayConfig::new(Organization::RotatedParity, 5, 12)
            .twin(engine == EngineKind::Rda)
            .page_size(96),
        buffer: BufferConfig {
            frames: 10,
            steal: true,
            policy: ReplacePolicy::Clock,
        },
        log: LogConfig {
            page_size: 512,
            copies: 2,
            amortized: false,
        },
        granularity: LogGranularity::Page,
        eot: EotPolicy::Force,
        checkpoint: CheckpointPolicy::Manual,
        strict_read_locks: false,
        trace_events: 0,
        span_events: false,
        mutations: ProtocolMutations::default(),
        shards: 1,
        group_commit: None,
    }
}

/// The two engines must produce byte-identical visible states for an
/// identical history including aborts and a crash.
#[test]
fn engines_agree_on_visible_state() {
    let run = |engine: EngineKind| -> Vec<Vec<u8>> {
        let db = Database::open(engine_cfg(engine));
        let mut t1 = db.begin();
        for p in 0..20 {
            t1.write(p, format!("v1-{p}").as_bytes()).unwrap();
        }
        t1.commit().unwrap();

        let mut t2 = db.begin();
        for p in 0..10 {
            t2.write(p, b"doomed").unwrap();
        }
        t2.abort().unwrap();

        let mut t3 = db.begin();
        t3.write(5, b"survivor").unwrap();
        t3.commit().unwrap();

        let mut t4 = db.begin();
        t4.write(6, b"lost in crash").unwrap();
        std::mem::forget(t4);
        db.crash_and_recover().unwrap();

        (0..db.data_pages())
            .map(|p| db.read_page(p).unwrap())
            .collect()
    };
    let rda = run(EngineKind::Rda);
    let wal = run(EngineKind::Wal);
    assert_eq!(rda, wal, "engines diverge on visible state");
    assert_eq!(&rda[5][..8], b"survivor");
    assert_eq!(&rda[7][..4], b"v1-7");
}

/// Crash, media failure, and recovery composed: lose a disk, crash the
/// system, recover, rebuild — committed data survives everything.
#[test]
fn crash_plus_disk_loss_composed() {
    let db = Database::open(engine_cfg(EngineKind::Rda));
    let mut tx = db.begin();
    for p in 0..30 {
        tx.write(p, &[0xC0 | (p as u8 & 0xF); 16]).unwrap();
    }
    tx.commit().unwrap();

    // In-flight work at the moment of the double failure.
    let mut tx = db.begin();
    for p in 0..8 {
        tx.write(p, &[0xEE; 16]).unwrap();
    }
    std::mem::forget(tx);

    db.fail_disk(3);
    db.crash();
    // Rebuild first — the disk's crash-time contents are reconstructed
    // through the working twins — then run restart recovery normally.
    let rebuilt = db.media_recover(3).expect("rebuild before restart");
    assert!(rebuilt > 0);
    db.recover().expect("restart after rebuild");
    for p in 0..30 {
        let got = db.read_page(p).unwrap();
        assert_eq!(got[0], 0xC0 | (p as u8 & 0xF), "page {p}");
    }
    assert!(db.verify().unwrap().is_empty());
}

/// The workload driver, crash injection and verification all compose over
/// the facade.
#[test]
fn simulated_workload_with_crashes_end_to_end() {
    let mut sim = SimConfig::new(DbConfig::paper_like(EngineKind::Rda, 300, 40));
    sim.crash_every = Some(25);
    sim.warmup = 20;
    sim.concurrency = 4;
    let spec = WorkloadSpec::high_update(300, 60);
    let result = run_workload(&sim, &spec, 120);
    assert!(result.crashes_injected >= 2, "{result:?}");
    // Lock-conflict aborts are expected on the hot set; most work commits.
    assert!(result.committed >= 70, "{result:?}");
}

/// Model and engine agree on the headline direction at a matched
/// operating point (experiment SIM-V).
#[test]
fn model_direction_confirmed_by_engine() {
    let check = rda::sim::model_vs_sim(500, 50, 200, 0.8);
    assert!(check.model_gain > 0.05, "{check:?}");
    assert!(check.sim_gain > 0.0, "{check:?}");
}

/// The paper's headline numbers still hold through the facade re-exports.
#[test]
fn facade_reexports_model() {
    let p = ModelParams::paper_defaults(Workload::HighUpdate).communality(0.9);
    let gain = families::a1::evaluate(&p).gain();
    assert!(gain > 0.3);
}

/// Record-granularity path through the facade.
#[test]
fn record_mode_through_facade() {
    let cfg = engine_cfg(EngineKind::Rda).granularity(LogGranularity::Record);
    let db = Database::open(cfg);
    let mut t = db.begin();
    t.update(0, 0, b"head").unwrap();
    t.update(0, 40, b"tail").unwrap();
    t.commit().unwrap();
    db.crash_and_recover().unwrap();
    let got = db.read_page(0).unwrap();
    assert_eq!(&got[0..4], b"head");
    assert_eq!(&got[40..44], b"tail");
}
